module Pool = Dfd_runtime.Pool
module Tracer = Dfd_trace.Tracer
module Event = Dfd_trace.Event
module Registry = Dfd_obs.Registry
module Openmetrics = Dfd_obs.Openmetrics
module Flight = Dfd_obs.Flight
module Headroom = Dfd_obs.Headroom
module Stats = Dfd_structures.Stats

type reject_reason = Queue_full | Breaker_open of string | Memory_pressure | Overloaded

let reject_reason_name = function
  | Queue_full -> "queue_full"
  | Breaker_open _ -> "breaker_open"
  | Memory_pressure -> "memory_pressure"
  | Overloaded -> "overloaded"

type outcome = Completed | Failed of string | Rejected of reject_reason | Cancelled

type handle = outcome Handle.t

type config = {
  seed : int;
  tenants : Tenant.t list;
  ladder : Ladder.config;
  retry : Retry.policy;
  breaker : Breaker.config;
  quota_ctl : Quota_ctl.config option;
  default_deadline : float option;
  wedge_grace : float;
  domains : int;
  max_respawns : int;
  worker_respawn_budget : int;
  on_pool_retired : (in_flight:int option -> unit) option;
}

let default_config =
  {
    seed = 0;
    tenants = [ Tenant.default ];
    ladder = Ladder.default_config;
    retry = Retry.default;
    breaker = Breaker.default_config;
    quota_ctl = None;
    default_deadline = None;
    wedge_grace = 5.0;
    domains = 2;
    max_respawns = 8;
    worker_respawn_budget = 0;
    on_pool_retired = None;
  }

exception Supervisor_giveup of string

(* A give-up is a typed terminal verdict: if it escapes into a job's work
   closure (nested service, callback), retrying that job would burn its
   whole backoff budget reaching the same verdict. *)
let () = Retry.register_terminal (function Supervisor_giveup _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Jobs and the executor protocol                                      *)
(* ------------------------------------------------------------------ *)

type ledger_slot = {
  l_id : int;
  l_tenant : string;
  l_class : string;
  mutable l_attempts : int;
  mutable l_requeues : int;
  mutable l_outcome : outcome option;
  mutable l_acks : int;
}

type job = {
  id : int;
  tenant : string;
  class_ : string;
  key : string option;
  deadline : float option;
  work : unit -> unit;
  retry : Retry.t;
  submitted_at : int;
  bgen : int;  (** breaker generation captured at admission. *)
  handle : handle;
  mutable run_quota : int option;  (** tenant K, stamped by the driver at dispatch. *)
  mutable followers : (ledger_slot * handle * int) list;
      (** coalesced duplicates riding this job: (slot, handle,
          submitted_at), newest first. *)
}

type exec_result =
  | R_done
  | R_timeout
  | R_cancelled_leak  (** [Pool.Cancelled] escaped [run] — a pool bug; surfaced, never swallowed. *)
  | R_exn of { msg : string; retryable : bool }
      (** [retryable] is classified at the raise site ({!Retry.is_terminal}
          needs the live exception, not its string). *)

(* The driver/executor mailbox.  Single-writer per transition:
   the driver writes [Assigned] (only over [Idle]) and [Idle] (only over
   [Finished]); the executor writes [Finished] (only over [Assigned]).
   A retired epoch's cell is simply never read again, so a late result
   from a wedged incarnation is structurally incapable of acknowledging
   anything — the "zero duplicated acks" half of the supervision
   contract. *)
type cell =
  | Idle
  | Assigned of job
  | Finished of { job_id : int; result : exec_result }

type epoch = {
  pool : Pool.t;
  flight : Flight.t;  (** this incarnation's crash-forensics ring. *)
  cell : cell Atomic.t;
  retired : bool Atomic.t;
  mutable exec : unit Domain.t option;
}

(* Poll helper: bounded spin, then micro-sleep — the service trades a few
   hundred microseconds of dispatch latency for not burning a core. *)
let relax spins = if spins < 200 then Domain.cpu_relax () else Unix.sleepf 0.0002

let executor_loop ep =
  let rec loop spins =
    match Atomic.get ep.cell with
    | Assigned job ->
      let result =
        match Pool.run ?timeout:job.deadline ?quota:job.run_quota ep.pool job.work with
        | () -> R_done
        | exception Pool.Timeout -> R_timeout
        | exception Pool.Cancelled -> R_cancelled_leak
        | exception e ->
          R_exn { msg = Printexc.to_string e; retryable = not (Retry.is_terminal e) }
      in
      Atomic.set ep.cell (Finished { job_id = job.id; result });
      loop 0
    | Idle | Finished _ ->
      if Atomic.get ep.retired then ()
      else begin
        relax spins;
        loop (spins + 1)
      end
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Ledger and per-tenant lanes                                         *)
(* ------------------------------------------------------------------ *)

type entry = {
  job : int;
  tenant : string;
  class_ : string;
  attempts : int;
  requeues : int;
  outcome : outcome option;
}

type counters = {
  accepted : int;
  coalesced : int;
  rejected_queue_full : int;
  rejected_breaker_open : int;
  rejected_memory_pressure : int;
  rejected_overloaded : int;
  completions : int;
  failures : int;
  cancelled : int;
  retries : int;
  timeouts : int;
  wedges : int;
  quarantines : int;
  respawns : int;
  duplicate_acks : int;
}

type tenant_stats = {
  ts_name : string;
  ts_weight : int;
  ts_bound : int;
  ts_accepted : int;
  ts_coalesced : int;
  ts_completions : int;
  ts_failures : int;
  ts_cancelled : int;
  ts_rejected_queue_full : int;
  ts_rejected_breaker_open : int;
  ts_rejected_memory_pressure : int;
  ts_rejected_overloaded : int;
  ts_first_shed : int option;
  ts_peak_depth : int;
  ts_latency : Stats.Histogram.t;
  ts_quota : int option;
  ts_quota_trajectory : (int * int) list;
}

(* One admission lane's bookkeeping; the queue itself lives in the
   shared Fair_queue. *)
type lane = {
  tn : Tenant.t;
  l_qctl : Quota_ctl.t option;
  lat : Stats.Histogram.t;
  mutable in_flight : int;  (* 0 or 1 *)
  mutable pending_retries : int;
  mutable a_accepted : int;
  mutable a_coalesced : int;
  mutable a_completions : int;
  mutable a_failures : int;
  mutable a_cancelled : int;
  mutable a_rej_queue : int;
  mutable a_rej_breaker : int;
  mutable a_rej_memory : int;
  mutable a_rej_overload : int;
  mutable a_first_shed : int option;
}

type t = {
  cfg : config;
  policy : Pool.policy;
  fault : Dfd_fault.Fault.t;
      (** seeded injector threaded into every pool incarnation — chaos
          campaigns arm crash/wedge triggers through it; {!Dfd_fault.Fault.none}
          in production. *)
  tracer : Tracer.t;
  registry : Registry.t;  (** live telemetry; shared with every pool incarnation. *)
  headroom : Headroom.t;
      (** Theorem-4.4 gauges over the service's pool; also owns the
          pressure baseline the quota tick consumes. *)
  flight_dir : string option;  (** where wedge/timeout/give-up dumps land. *)
  mutable epoch : epoch;
  mutable retired_epochs : epoch list;
  mutable clock : int;
  queue : job Fair_queue.t;  (** per-tenant bounded lanes, DRR dispatch. *)
  mutable pending : (int * job) list;  (** retries waiting for their due step. *)
  lanes : (string, lane) Hashtbl.t;
  lane_order : string list;  (** registration (= DRR) order. *)
  coalesce : (string, job) Hashtbl.t;  (** (tenant NUL key) -> queued primary. *)
  breakers : (string, Breaker.t) Hashtbl.t;  (** keyed (tenant NUL class). *)
  ladder : Ladder.t;
  slots : (int, ledger_slot) Hashtbl.t;
  mutable next_id : int;
  mutable press_ewma : int;  (** 4:1 smoothed global alloc bytes/step, for the ladder. *)
  (* global counters *)
  mutable c_accepted : int;
  mutable c_coalesced : int;
  mutable c_rej_queue : int;
  mutable c_rej_breaker : int;
  mutable c_rej_memory : int;
  mutable c_rej_overload : int;
  mutable c_completions : int;
  mutable c_failures : int;
  mutable c_cancelled : int;
  mutable c_retries : int;
  mutable c_timeouts : int;
  mutable c_wedges : int;
  mutable c_quarantines : int;
  mutable c_respawns : int;
  mutable c_dup_acks : int;
}

let lane_of t name =
  match Hashtbl.find_opt t.lanes name with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Service: unknown tenant %S" name)

let lanes_in_order t = List.map (fun n -> Hashtbl.find t.lanes n) t.lane_order

(* ------------------------------------------------------------------ *)
(* Pool incarnations                                                   *)
(* ------------------------------------------------------------------ *)

let max_lane_quota lanes =
  List.fold_left
    (fun acc l -> match l.l_qctl with Some qc -> max acc (Quota_ctl.quota qc) | None -> acc)
    0 lanes

let effective_policy ~policy ~k0 =
  match policy with
  | Pool.Dfdeques _ when k0 > 0 -> Pool.Dfdeques { quota = k0 }
  | p -> p

let spawn_raw_epoch ?(fault = Dfd_fault.Fault.none) ~domains ~policy ~k0 ~registry
    ~respawn_budget () =
  let domains = max 0 domains in
  (* each incarnation gets a fresh flight ring (forensics belong to one
     pool's lifetime) but shares the registry, whose upsert registration
     keeps the dfd_pool_* series continuous across respawns *)
  let flight = Flight.create ~lanes:(domains + 1) () in
  let pool =
    Pool.create ~domains ~fault ~registry ~flight ~respawn_budget
      (effective_policy ~policy ~k0)
  in
  let ep = { pool; flight; cell = Atomic.make Idle; retired = Atomic.make false; exec = None } in
  ep.exec <- Some (Domain.spawn (fun () -> executor_loop ep));
  ep

let spawn_epoch t =
  let k0 = max_lane_quota (lanes_in_order t) in
  let ep =
    spawn_raw_epoch ~fault:t.fault ~domains:t.cfg.domains ~policy:t.policy ~k0
      ~registry:t.registry ~respawn_budget:t.cfg.worker_respawn_budget ()
  in
  (* the fresh pool's alloc counter restarts at 0 *)
  Headroom.reset_pressure t.headroom;
  ep

(* The service's own supervision counters exposed as stable probes: they
   are pure functions of (seed, submission order), so they may appear in
   byte-deterministic reports — unlike the dfd_pool_* instruments the
   shared registry also carries, which race with running domains and are
   therefore registered unstable. *)
let register_service_probes t =
  let r = t.registry in
  let c name help f = Registry.probe r ~stable:true ~kind:`Counter ~help name f in
  let g name help f = Registry.probe r ~stable:true ~kind:`Gauge ~help name f in
  c "dfd_service_accepted_total" "Submissions admitted to a lane." (fun () -> t.c_accepted);
  c "dfd_service_coalesced_total" "Duplicate submissions that rode a queued job." (fun () ->
      t.c_coalesced);
  c "dfd_service_rejected_total{reason=\"queue_full\"}" "Submissions shed, by reason." (fun () ->
      t.c_rej_queue);
  c "dfd_service_rejected_total{reason=\"breaker_open\"}" "" (fun () -> t.c_rej_breaker);
  c "dfd_service_rejected_total{reason=\"memory_pressure\"}" "" (fun () -> t.c_rej_memory);
  c "dfd_service_rejected_total{reason=\"overloaded\"}" "" (fun () -> t.c_rej_overload);
  c "dfd_service_completions_total" "Jobs acknowledged Completed." (fun () -> t.c_completions);
  c "dfd_service_failures_total" "Jobs acknowledged Failed (retry budget exhausted)." (fun () ->
      t.c_failures);
  c "dfd_service_cancelled_total" "Jobs cancelled before they ran." (fun () -> t.c_cancelled);
  c "dfd_service_retries_total" "Re-attempts scheduled with backoff." (fun () -> t.c_retries);
  c "dfd_service_timeouts_total" "Attempts that hit their deadline." (fun () -> t.c_timeouts);
  c "dfd_service_wedges_total" "Pool incarnations declared wedged." (fun () -> t.c_wedges);
  c "dfd_service_quarantines_total" "Workers surgically quarantined instead of a pool respawn."
    (fun () -> t.c_quarantines);
  c "dfd_service_respawns_total" "Fresh pool incarnations after a wedge." (fun () -> t.c_respawns);
  c "dfd_service_duplicate_acks_total" "Terminal acks refused (0 in a correct run)." (fun () ->
      t.c_dup_acks);
  c "dfd_service_breaker_transitions_total" "Circuit-breaker state changes across lanes."
    (fun () ->
      Hashtbl.fold (fun _ b acc -> acc + List.length (Breaker.transitions b)) t.breakers 0);
  c "dfd_service_breaker_stale_total" "Breaker results dropped as stale (window closed)."
    (fun () -> Hashtbl.fold (fun _ b acc -> acc + Breaker.stale_results b) t.breakers 0);
  c "dfd_service_ladder_transitions_total" "Backpressure ladder rung changes." (fun () ->
      List.length (Ladder.transitions t.ladder));
  g "dfd_service_ladder_level" "Current backpressure rung (0 accept .. 3 break)." (fun () ->
      Ladder.level_index (Ladder.level t.ladder));
  g "dfd_service_queue_depth" "Jobs queued across all lanes, not yet dispatched." (fun () ->
      Fair_queue.total t.queue);
  g "dfd_service_pending_retries" "Retries waiting for their due step." (fun () ->
      List.length t.pending);
  g "dfd_service_clock" "The driver's logical clock (steps)." (fun () -> t.clock);
  g "dfd_service_quota_bytes" "Largest tenant memory threshold K (0 under Work_stealing)."
    (fun () ->
      match max_lane_quota (lanes_in_order t) with
      | 0 -> ( match Pool.quota t.epoch.pool with Some k -> k | None -> 0)
      | k -> k);
  (* per-tenant lanes, labelled so OpenMetrics renders one family *)
  List.iter
    (fun name ->
       let lane = Hashtbl.find t.lanes name in
       let lbl fam = Registry.labeled fam [ ("tenant", name) ] in
       c (lbl "dfd_tenant_accepted_total") "Per-tenant admissions." (fun () -> lane.a_accepted);
       c (lbl "dfd_tenant_coalesced_total") "Per-tenant coalesced duplicates." (fun () ->
           lane.a_coalesced);
       c (lbl "dfd_tenant_completions_total") "Per-tenant completions." (fun () ->
           lane.a_completions);
       c (lbl "dfd_tenant_shed_total") "Per-tenant rejections, all reasons." (fun () ->
           lane.a_rej_queue + lane.a_rej_breaker + lane.a_rej_memory + lane.a_rej_overload);
       g (lbl "dfd_tenant_queue_depth") "Per-tenant queued jobs." (fun () ->
           Fair_queue.depth t.queue name);
       g (lbl "dfd_tenant_quota_bytes") "Per-tenant memory threshold K." (fun () ->
           match lane.l_qctl with Some qc -> Quota_ctl.quota qc | None -> 0))
    t.lane_order

let create ?(tracer = Tracer.disabled) ?(fault = Dfd_fault.Fault.none) ?registry ?flight_dir
    ?headroom_s1 ?headroom_depth ?(config = default_config) policy =
  Tenant.validate_all config.tenants;
  Ladder.validate config.ladder;
  if config.wedge_grace <= 0.0 then invalid_arg "Service: wedge_grace must be positive";
  if config.max_respawns < 0 then invalid_arg "Service: max_respawns must be >= 0";
  if config.worker_respawn_budget < 0 then
    invalid_arg "Service: worker_respawn_budget must be >= 0";
  Retry.validate config.retry;
  let registry = match registry with Some r -> r | None -> Registry.create () in
  let queue = Fair_queue.create () in
  let lanes = Hashtbl.create 8 in
  let lane_order = List.map (fun (tn : Tenant.t) -> tn.name) config.tenants in
  List.iter
    (fun (tn : Tenant.t) ->
       Fair_queue.add_tenant queue ~name:tn.name ~weight:tn.weight ~bound:tn.queue_bound;
       let l_qctl =
         match policy with
         | Pool.Work_stealing -> None
         | Pool.Dfdeques _ -> (
           match (tn.quota, config.quota_ctl) with
           | Some qcfg, _ | None, Some qcfg -> Some (Quota_ctl.create qcfg)
           | None, None -> None)
       in
       Hashtbl.replace lanes tn.name
         {
           tn;
           l_qctl;
           lat = Stats.Histogram.create ();
           in_flight = 0;
           pending_retries = 0;
           a_accepted = 0;
           a_coalesced = 0;
           a_completions = 0;
           a_failures = 0;
           a_cancelled = 0;
           a_rej_queue = 0;
           a_rej_breaker = 0;
           a_rej_memory = 0;
           a_rej_overload = 0;
           a_first_shed = None;
         })
    config.tenants;
  let lane_list = List.map (fun n -> Hashtbl.find lanes n) lane_order in
  let k0 =
    match max_lane_quota lane_list with
    | 0 -> ( match policy with Pool.Dfdeques { quota } -> quota | Pool.Work_stealing -> 0)
    | k -> k
  in
  let headroom =
    Headroom.create ~registry ~policy:"service" ?s1:headroom_s1 ?depth:headroom_depth
      ~p:(max 0 config.domains + 1) ~k:k0 ()
  in
  let t =
    {
      cfg = config;
      policy;
      fault;
      tracer;
      registry;
      headroom;
      flight_dir;
      epoch =
        spawn_raw_epoch ~fault ~domains:config.domains ~policy ~k0 ~registry
          ~respawn_budget:config.worker_respawn_budget ();
      retired_epochs = [];
      clock = 0;
      queue;
      pending = [];
      lanes;
      lane_order;
      coalesce = Hashtbl.create 32;
      breakers = Hashtbl.create 8;
      ladder = Ladder.create config.ladder;
      slots = Hashtbl.create 64;
      next_id = 0;
      press_ewma = 0;
      c_accepted = 0;
      c_coalesced = 0;
      c_rej_queue = 0;
      c_rej_breaker = 0;
      c_rej_memory = 0;
      c_rej_overload = 0;
      c_completions = 0;
      c_failures = 0;
      c_cancelled = 0;
      c_retries = 0;
      c_timeouts = 0;
      c_wedges = 0;
      c_quarantines = 0;
      c_respawns = 0;
      c_dup_acks = 0;
    }
  in
  register_service_probes t;
  t

(* Crash forensics: serialise the current incarnation's flight ring to
   [flight_dir], with the pool's diagnostic snapshot embedded so the
   post-mortem state travels with the artifact instead of living only in
   an exception message.  Best-effort by design — a dump failure must
   never mask the wedge/timeout it is trying to explain. *)
let flight_dump t ~reason =
  match t.flight_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (Printf.sprintf "flight_%s_step%05d.json" reason t.clock) in
    let snapshot = try Pool.snapshot t.epoch.pool with _ -> "pool snapshot unavailable" in
    (try Flight.write_file ~snapshot ~path ~reason t.epoch.flight with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Ledger bookkeeping                                                  *)
(* ------------------------------------------------------------------ *)

let new_slot t ~tenant ~class_ =
  let id = t.next_id in
  t.next_id <- id + 1;
  let s =
    {
      l_id = id;
      l_tenant = tenant;
      l_class = class_;
      l_attempts = 0;
      l_requeues = 0;
      l_outcome = None;
      l_acks = 0;
    }
  in
  Hashtbl.replace t.slots id s;
  s

(* The single choke point for terminal acknowledgements: the first ack
   wins, any further one is counted as a duplicate and refused. *)
let ack t (s : ledger_slot) out =
  s.l_acks <- s.l_acks + 1;
  match s.l_outcome with
  | Some _ -> t.c_dup_acks <- t.c_dup_acks + 1
  | None ->
    s.l_outcome <- Some out;
    let lane = lane_of t s.l_tenant in
    (match out with
     | Completed ->
       t.c_completions <- t.c_completions + 1;
       lane.a_completions <- lane.a_completions + 1
     | Failed _ ->
       t.c_failures <- t.c_failures + 1;
       lane.a_failures <- lane.a_failures + 1
     | Cancelled ->
       t.c_cancelled <- t.c_cancelled + 1;
       lane.a_cancelled <- lane.a_cancelled + 1
     | Rejected _ -> ())

let breaker_key tenant class_ = tenant ^ "\x00" ^ class_

let breaker_label tenant class_ = if tenant = "default" then class_ else tenant ^ "/" ^ class_

let breaker_for t ~tenant ~class_ =
  let key = breaker_key tenant class_ in
  match Hashtbl.find_opt t.breakers key with
  | Some b -> b
  | None ->
    let b = Breaker.create t.cfg.breaker in
    Hashtbl.replace t.breakers key b;
    b

let coalesce_key tenant key = tenant ^ "\x00" ^ key

(* Terminal outcome for a job: ledger, latency, handle, and every
   coalesced follower riding it. *)
let settle t (job : job) (s : ledger_slot) out =
  let lane = lane_of t job.tenant in
  ack t s out;
  (match out with
   | Completed -> Stats.Histogram.add lane.lat (float_of_int (t.clock - job.submitted_at))
   | _ -> ());
  let followers = List.rev job.followers in
  job.followers <- [];
  Handle.resolve job.handle out;
  List.iter
    (fun ((fs : ledger_slot), fh, f_submitted) ->
       ack t fs out;
       (match out with
        | Completed -> Stats.Histogram.add lane.lat (float_of_int (t.clock - f_submitted))
        | _ -> ());
       Handle.resolve fh out)
    followers

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

(* Which tenants the current ladder rung refuses outright: at [Shed] the
   minimum-weight lanes, at [Break] everything but the maximum-weight
   lanes.  Weight is the declared importance, so the bully-shaped cheap
   tenant pays first and the premium tenant survives longest. *)
let ladder_refuses t lane =
  match Ladder.level t.ladder with
  | Ladder.Accept | Ladder.Coalesce -> false
  | Ladder.Shed -> lane.tn.Tenant.weight <= Fair_queue.min_weight t.queue
  | Ladder.Break ->
    let max_w =
      List.fold_left (fun m l -> max m l.tn.Tenant.weight) min_int (lanes_in_order t)
    in
    lane.tn.Tenant.weight < max_w

let effective_load t lane =
  Fair_queue.depth t.queue lane.tn.Tenant.name + lane.pending_retries + lane.in_flight

let submit t ?(tenant = "default") ?(class_ = "default") ?key ?deadline ?on_done work =
  let lane = lane_of t tenant in
  let h = Handle.make ~id:t.next_id ~tenant in
  (match on_done with Some f -> Handle.on_done h f | None -> ());
  let reject r =
    let s = new_slot t ~tenant ~class_ in
    ack t s (Rejected r);
    (match r with
     | Queue_full ->
       t.c_rej_queue <- t.c_rej_queue + 1;
       lane.a_rej_queue <- lane.a_rej_queue + 1
     | Breaker_open _ ->
       t.c_rej_breaker <- t.c_rej_breaker + 1;
       lane.a_rej_breaker <- lane.a_rej_breaker + 1
     | Memory_pressure ->
       t.c_rej_memory <- t.c_rej_memory + 1;
       lane.a_rej_memory <- lane.a_rej_memory + 1
     | Overloaded ->
       t.c_rej_overload <- t.c_rej_overload + 1;
       lane.a_rej_overload <- lane.a_rej_overload + 1;
       if lane.a_first_shed = None then lane.a_first_shed <- Some t.clock);
    Handle.resolve h (Rejected r);
    h
  in
  let coalescible =
    match key with
    | Some k when Ladder.level_index (Ladder.level t.ladder) >= Ladder.level_index Ladder.Coalesce
      -> Hashtbl.find_opt t.coalesce (coalesce_key tenant k)
    | _ -> None
  in
  if ladder_refuses t lane then reject Overloaded
  else if match lane.l_qctl with Some qc -> Quota_ctl.shedding qc | None -> false then
    reject Memory_pressure
  else
    match coalescible with
    | Some primary ->
      (* ride the queued primary: own ledger slot, shared execution *)
      let s = new_slot t ~tenant ~class_ in
      primary.followers <- (s, h, t.clock) :: primary.followers;
      t.c_coalesced <- t.c_coalesced + 1;
      lane.a_coalesced <- lane.a_coalesced + 1;
      h
    | None ->
      (* capacity before the breaker: [Breaker.admit] consumes a half-open
         probe slot, which must not be burned on a job the lane would
         refuse anyway.  The load counts pending retries and the in-flight
         attempt, so forced retry pushes can never overrun the bound. *)
      if effective_load t lane >= lane.tn.Tenant.queue_bound then reject Queue_full
      else begin
        let b = breaker_for t ~tenant ~class_ in
        if not (Breaker.admit b ~now:t.clock) then
          reject (Breaker_open (breaker_label tenant class_))
        else begin
          let s = new_slot t ~tenant ~class_ in
          let deadline = match deadline with Some _ as d -> d | None -> t.cfg.default_deadline in
          let job =
            {
              id = s.l_id;
              tenant;
              class_;
              key;
              deadline;
              work;
              retry = Retry.create t.cfg.retry ~seed:t.cfg.seed ~job:s.l_id;
              submitted_at = t.clock;
              bgen = Breaker.generation b;
              handle = h;
              run_quota = None;
              followers = [];
            }
          in
          Fair_queue.push_force t.queue ~tenant job;
          (match key with
           | Some k -> Hashtbl.replace t.coalesce (coalesce_key tenant k) job
           | None -> ());
          t.c_accepted <- t.c_accepted + 1;
          lane.a_accepted <- lane.a_accepted + 1;
          h
        end
      end

let admission h =
  match Handle.status h with
  | Handle.Done (Rejected r) -> Error r
  | _ -> Ok (Handle.id h)

let poll = Handle.status

(* Drop a queued primary's coalesce-table binding (dispatch, cancel). *)
let uncoalesce t (job : job) =
  match job.key with
  | None -> ()
  | Some k ->
    let ck = coalesce_key job.tenant k in
    (match Hashtbl.find_opt t.coalesce ck with
     | Some j when j.id = job.id -> Hashtbl.remove t.coalesce ck
     | _ -> ())

let cancel t h =
  if Handle.is_done h then false
  else begin
    let id = Handle.id h in
    let tenant = Handle.tenant h in
    match Fair_queue.remove t.queue ~tenant (fun (j : job) -> j.id = id) with
    | Some job ->
      uncoalesce t job;
      settle t job (Hashtbl.find t.slots id) Cancelled;
      true
    | None -> (
      match List.find_opt (fun (_, (j : job)) -> j.id = id) t.pending with
      | Some (_, job) ->
        t.pending <- List.filter (fun (_, (j : job)) -> j.id <> id) t.pending;
        (lane_of t tenant).pending_retries <- (lane_of t tenant).pending_retries - 1;
        settle t job (Hashtbl.find t.slots id) Cancelled;
        true
      | None ->
        (* a coalesced follower: detach it from whichever primary carries it *)
        let found = ref false in
        Hashtbl.iter
          (fun _ (primary : job) ->
             if (not !found) && List.exists (fun (_, fh, _) -> Handle.id fh = id) primary.followers
             then begin
               let mine, rest =
                 List.partition (fun (_, fh, _) -> Handle.id fh = id) primary.followers
               in
               primary.followers <- rest;
               List.iter
                 (fun ((fs : ledger_slot), fh, _) ->
                    ack t fs Cancelled;
                    Handle.resolve fh Cancelled)
                 mine;
               found := true
             end)
          t.coalesce;
        !found)
  end

(* ------------------------------------------------------------------ *)
(* Supervision: dispatch, wedge detection, respawn                     *)
(* ------------------------------------------------------------------ *)

(* Block until the executor posts this job's result, watching the pool's
   heartbeat; [None] = the pool made no progress for [wedge_grace]
   seconds with the attempt still in flight — declared wedged.

   Surgery precedes amputation: before escalating a stall to the
   wholesale pool-wedge verdict, the driver looks for a worker it can
   quarantine in place.  A candidate is any non-caller slot that either
   raised its own crash certificate ([w_stopped]; normally peers reap
   these themselves, so this is a backstop for an otherwise-idle pool)
   or bears the wedge signature: it holds a taken-but-unstarted task
   while its per-worker activity clock sat flat across the whole grace
   window.  The [w_holding] requirement is what makes the verdict sound
   — a worker stuck inside {e user} code has already started its task
   ([w_holding] false), cannot be safely quarantined, and correctly
   escalates to the pool respawn backstop.  A won quarantine shrinks
   the Theorem-4.4 budget to the degraded p, optionally respawns the
   slot under the worker respawn budget, dumps forensics, resets the
   stall clock and keeps waiting: the pool continues at p-1. *)
let await_result t (job : job) =
  let ep = t.epoch in
  let last_hb = ref (Pool.heartbeat ep.pool) in
  let stall_base = ref (Pool.worker_states ep.pool) in
  let last_progress = ref (Unix.gettimeofday ()) in
  let reset_stall () =
    last_progress := Unix.gettimeofday ();
    stall_base := Pool.worker_states ep.pool
  in
  let try_surgical () =
    let states = Pool.worker_states ep.pool in
    let won = ref false in
    Array.iteri
      (fun w (st : Pool.worker_state) ->
         if
           w > 0
           && (not st.Pool.w_quarantined)
           && (st.Pool.w_stopped
              || (st.Pool.w_holding && st.Pool.w_activity = (!stall_base).(w).Pool.w_activity))
         then begin
           let cause = if st.Pool.w_stopped then "crash" else "wedge" in
           if Pool.quarantine ~cause ep.pool w then begin
             t.c_quarantines <- t.c_quarantines + 1;
             Headroom.set_p t.headroom (Pool.degraded_p ep.pool);
             flight_dump t ~reason:(Printf.sprintf "quarantine_w%d" w);
             if Pool.respawn_worker ep.pool w then
               Headroom.set_p t.headroom (Pool.degraded_p ep.pool);
             won := true
           end
         end)
      states;
    !won
  in
  let rec go spins =
    match Atomic.get ep.cell with
    | Finished { job_id; result } when job_id = job.id ->
      Atomic.set ep.cell Idle;
      Some result
    | Finished _ ->
      (* a result for a job this epoch never ran: impossible by the
         single-writer protocol *)
      assert false
    | Idle | Assigned _ ->
      let hb = Pool.heartbeat ep.pool in
      if hb <> !last_hb then begin
        last_hb := hb;
        reset_stall ()
      end;
      if Unix.gettimeofday () -. !last_progress > t.cfg.wedge_grace then
        if try_surgical () then begin
          reset_stall ();
          go 0
        end
        else None
      else begin
        relax spins;
        go (spins + 1)
      end
  in
  go 0

let respawn t ~in_flight =
  t.c_wedges <- t.c_wedges + 1;
  if t.c_respawns >= t.cfg.max_respawns then begin
    flight_dump t ~reason:"giveup";
    raise
      (Supervisor_giveup
         (Printf.sprintf "pool wedged %d times (max_respawns %d); last snapshot:\n%s"
            t.c_wedges t.cfg.max_respawns (Pool.snapshot t.epoch.pool)))
  end;
  flight_dump t ~reason:"wedge";
  t.c_respawns <- t.c_respawns + 1;
  let old = t.epoch in
  Atomic.set old.retired true;
  Pool.kill old.pool;
  t.retired_epochs <- old :: t.retired_epochs;
  (match t.cfg.on_pool_retired with
   | Some f -> f ~in_flight
   | None -> ());
  t.epoch <- spawn_epoch t

(* Schedule a retry (with backoff) or acknowledge the final failure.
   [retryable:false] (a terminal error class per {!Retry.is_terminal})
   skips the backoff schedule entirely: the remaining budget would be
   burned reaching the same deterministic failure. *)
let fail_path ?(retryable = true) t (job : job) msg =
  let lane = lane_of t job.tenant in
  Breaker.record_failure ~gen:job.bgen (breaker_for t ~tenant:job.tenant ~class_:job.class_)
    ~now:t.clock;
  if not retryable then settle t job (Hashtbl.find t.slots job.id) (Failed msg)
  else
    match Retry.next_delay job.retry with
    | Some d ->
      t.c_retries <- t.c_retries + 1;
      lane.pending_retries <- lane.pending_retries + 1;
      t.pending <- (t.clock + d, job) :: t.pending
    | None ->
      let s = Hashtbl.find t.slots job.id in
      s.l_attempts <- Retry.attempts job.retry;
      settle t job s (Failed msg)

(* Run one attempt to completion, attributing its allocation delta to
   the job's tenant.  Returns the measured delta (0 on a wedge). *)
let run_one t (job : job) =
  let s = Hashtbl.find t.slots job.id in
  let lane = lane_of t job.tenant in
  lane.in_flight <- 1;
  job.run_quota <- Option.map Quota_ctl.quota lane.l_qctl;
  let before = (Pool.counters t.epoch.pool).Pool.alloc_bytes in
  (match Atomic.get t.epoch.cell with
   | Idle -> ()
   | _ -> assert false);
  Atomic.set t.epoch.cell (Assigned job);
  let result = await_result t job in
  let delta =
    match result with
    | None -> 0
    | Some _ ->
      (* the pool is idle again (the executor posted Finished), so the
         counter sum is exact: the delta is this attempt's allocation *)
      max 0 ((Pool.counters t.epoch.pool).Pool.alloc_bytes - before)
  in
  if delta > 0 then Headroom.observe t.headroom ~live_bytes:delta;
  (match result with
   | Some R_done ->
     s.l_attempts <- Retry.attempts job.retry + 1;
     Breaker.record_success ~gen:job.bgen
       (breaker_for t ~tenant:job.tenant ~class_:job.class_)
       ~now:t.clock;
     settle t job s Completed
   | Some R_timeout ->
     flight_dump t ~reason:"timeout";
     t.c_timeouts <- t.c_timeouts + 1;
     s.l_attempts <- Retry.attempts job.retry + 1;
     fail_path t job "deadline exceeded"
   | Some R_cancelled_leak ->
     s.l_attempts <- Retry.attempts job.retry + 1;
     fail_path t job "internal: Pool.Cancelled leaked to the run caller"
   | Some (R_exn { msg; retryable }) ->
     s.l_attempts <- Retry.attempts job.retry + 1;
     fail_path ~retryable t job msg
   | None ->
     (* wedged: respawn the pool, requeue the in-flight job exactly once
        at the front.  The requeue consumes a retry attempt (a job that
        wedges every incarnation must not respawn pools forever). *)
     respawn t ~in_flight:(Some job.id);
     s.l_requeues <- s.l_requeues + 1;
     Breaker.record_failure ~gen:job.bgen
       (breaker_for t ~tenant:job.tenant ~class_:job.class_)
       ~now:t.clock;
     (match Retry.next_delay job.retry with
      | Some _ ->
        t.c_retries <- t.c_retries + 1;
        Fair_queue.push_front t.queue ~tenant:job.tenant job
      | None ->
        s.l_attempts <- Retry.attempts job.retry;
        settle t job s (Failed "pool wedged; retry budget exhausted")));
  lane.in_flight <- 0;
  delta

(* ------------------------------------------------------------------ *)
(* The driver clock                                                    *)
(* ------------------------------------------------------------------ *)

(* Per-tenant quota control: the dispatched tenant observes its
   attempt's measured allocation delta, every other lane observes 0 (its
   EWMA decays, so an idle tenant's K recovers).  One tenant pinned at
   its floor ([shedding]) degrades only its own admissions. *)
let quota_tick t ~dispatched ~delta =
  (* keep the global alloc-rate gauge and pressure baseline current *)
  let ab = (Pool.counters t.epoch.pool).Pool.alloc_bytes in
  let global = Headroom.take_pressure t.headroom ~cumulative_alloc:ab in
  t.press_ewma <- ((3 * t.press_ewma) + global) / 4;
  List.iter
    (fun lane ->
       match lane.l_qctl with
       | None -> ()
       | Some qc ->
         let pressure =
           match dispatched with Some name when name = lane.tn.Tenant.name -> delta | _ -> 0
         in
         (match Quota_ctl.observe qc ~now:t.clock ~pressure with
          | Quota_ctl.Steady -> ()
          | Quota_ctl.Shrink { from_quota; to_quota } | Quota_ctl.Grow { from_quota; to_quota }
            ->
            (* the budget gauge tracks the largest K still in use *)
            Headroom.set_quota t.headroom (max_lane_quota (lanes_in_order t));
            if Tracer.enabled t.tracer then
              Tracer.emit t.tracer ~ts:t.clock ~proc:(-1) ~tid:(-1)
                (Event.Quota_adjusted { from_quota; to_quota; pressure })))
    (lanes_in_order t)

(* Sample the overload signals and walk the ladder; every rung change is
   traced. *)
let ladder_tick t =
  let total_bound = Fair_queue.total_bound t.queue in
  let occupancy_pct = if total_bound <= 0 then 0 else 100 * Fair_queue.total t.queue / total_bound in
  let budget = Headroom.budget t.headroom in
  let pressure_pct = if budget <= 0 then 0 else 100 * t.press_ewma / budget in
  match Ladder.observe t.ladder ~now:t.clock ~occupancy_pct ~pressure_pct with
  | None -> ()
  | Some (from, to_) ->
    if Tracer.enabled t.tracer then
      Tracer.emit t.tracer ~ts:t.clock ~proc:(-1) ~tid:(-1)
        (Event.Ladder_shift
           {
             from_level = Ladder.level_index from;
             to_level = Ladder.level_index to_;
             occupancy = occupancy_pct;
             pressure = pressure_pct;
           })

let step t =
  t.clock <- t.clock + 1;
  (* promote due retries, ordered by (due step, job id) so the dispatch
     order is a pure function of the schedule *)
  let due, rest = List.partition (fun (d, _) -> d <= t.clock) t.pending in
  t.pending <- rest;
  let due = List.sort (fun (d1, j1) (d2, j2) -> compare (d1, j1.id) (d2, j2.id)) due in
  List.iter
    (fun (_, (job : job)) ->
       (lane_of t job.tenant).pending_retries <- (lane_of t job.tenant).pending_retries - 1;
       Fair_queue.push_force t.queue ~tenant:job.tenant job)
    due;
  ladder_tick t;
  let dispatched, delta =
    match Fair_queue.pop t.queue with
    | None -> (None, 0)
    | Some (tenant, job) ->
      uncoalesce t job;
      let delta = run_one t job in
      (Some tenant, delta)
  in
  quota_tick t ~dispatched ~delta

let idle t = Fair_queue.total t.queue = 0 && t.pending = []

let drive ?(max_steps = 10_000) t =
  let n = ref 0 in
  while (not (idle t)) && !n < max_steps do
    step t;
    incr n
  done

let await ?(max_steps = 10_000) t h =
  let n = ref 0 in
  while (not (Handle.is_done h)) && !n < max_steps do
    step t;
    incr n
  done;
  match Handle.status h with Handle.Done out -> Some out | _ -> None

let now t = t.clock

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let counters t =
  {
    accepted = t.c_accepted;
    coalesced = t.c_coalesced;
    rejected_queue_full = t.c_rej_queue;
    rejected_breaker_open = t.c_rej_breaker;
    rejected_memory_pressure = t.c_rej_memory;
    rejected_overloaded = t.c_rej_overload;
    completions = t.c_completions;
    failures = t.c_failures;
    cancelled = t.c_cancelled;
    retries = t.c_retries;
    timeouts = t.c_timeouts;
    wedges = t.c_wedges;
    quarantines = t.c_quarantines;
    respawns = t.c_respawns;
    duplicate_acks = t.c_dup_acks;
  }

let tenant_stats t =
  List.map
    (fun lane ->
       {
         ts_name = lane.tn.Tenant.name;
         ts_weight = lane.tn.Tenant.weight;
         ts_bound = lane.tn.Tenant.queue_bound;
         ts_accepted = lane.a_accepted;
         ts_coalesced = lane.a_coalesced;
         ts_completions = lane.a_completions;
         ts_failures = lane.a_failures;
         ts_cancelled = lane.a_cancelled;
         ts_rejected_queue_full = lane.a_rej_queue;
         ts_rejected_breaker_open = lane.a_rej_breaker;
         ts_rejected_memory_pressure = lane.a_rej_memory;
         ts_rejected_overloaded = lane.a_rej_overload;
         ts_first_shed = lane.a_first_shed;
         ts_peak_depth = Fair_queue.peak_depth t.queue lane.tn.Tenant.name;
         ts_latency = lane.lat;
         ts_quota = Option.map Quota_ctl.quota lane.l_qctl;
         ts_quota_trajectory =
           (match lane.l_qctl with Some qc -> Quota_ctl.trajectory qc | None -> []);
       })
    (lanes_in_order t)

let ledger t =
  let out = ref [] in
  for id = t.next_id - 1 downto 0 do
    let s = Hashtbl.find t.slots id in
    out :=
      {
        job = s.l_id;
        tenant = s.l_tenant;
        class_ = s.l_class;
        attempts = s.l_attempts;
        requeues = s.l_requeues;
        outcome = s.l_outcome;
      }
      :: !out
  done;
  !out

let verify_ledger t =
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun m -> if !problem = None then problem := Some m) fmt in
  if t.c_dup_acks > 0 then fail "%d duplicate acknowledgements" t.c_dup_acks;
  let completions = ref 0
  and failures = ref 0
  and rejections = ref 0
  and cancellations = ref 0 in
  for id = 0 to t.next_id - 1 do
    let s = Hashtbl.find t.slots id in
    (match s.l_outcome with
     | None -> fail "job %d has no terminal outcome (lost)" id
     | Some Completed -> incr completions
     | Some (Failed _) -> incr failures
     | Some (Rejected _) -> incr rejections
     | Some Cancelled -> incr cancellations);
    if s.l_acks <> 1 then fail "job %d acknowledged %d times" id s.l_acks
  done;
  if !completions <> t.c_completions then
    fail "completion counter %d but %d completed entries" t.c_completions !completions;
  if !failures <> t.c_failures then
    fail "failure counter %d but %d failed entries" t.c_failures !failures;
  if !cancellations <> t.c_cancelled then
    fail "cancellation counter %d but %d cancelled entries" t.c_cancelled !cancellations;
  let rej = t.c_rej_queue + t.c_rej_breaker + t.c_rej_memory + t.c_rej_overload in
  if !rejections <> rej then fail "rejection counters %d but %d rejected entries" rej !rejections;
  if t.c_accepted + t.c_coalesced + rej <> t.next_id then
    fail "accepted %d + coalesced %d + rejected %d <> %d submissions" t.c_accepted t.c_coalesced
      rej t.next_id;
  (* per-tenant counters must sum to the global ones *)
  let sum f = List.fold_left (fun acc l -> acc + f l) 0 (lanes_in_order t) in
  if sum (fun l -> l.a_accepted) <> t.c_accepted then fail "per-tenant accepted sum mismatch";
  if sum (fun l -> l.a_completions) <> t.c_completions then
    fail "per-tenant completion sum mismatch";
  if
    sum (fun l -> l.a_rej_queue + l.a_rej_breaker + l.a_rej_memory + l.a_rej_overload) <> rej
  then fail "per-tenant rejection sum mismatch";
  match !problem with None -> Ok () | Some m -> Error m

let quota t =
  match max_lane_quota (lanes_in_order t) with
  | 0 -> Pool.quota t.epoch.pool
  | k -> Some k

let quota_trajectory t =
  let all =
    List.concat_map
      (fun lane -> match lane.l_qctl with Some qc -> Quota_ctl.trajectory qc | None -> [])
      (lanes_in_order t)
  in
  List.stable_sort (fun (s1, _) (s2, _) -> compare s1 s2) all

let ladder_level t = Ladder.level t.ladder

let ladder_transitions t = Ladder.transitions t.ladder

let breaker_transitions t =
  let labels =
    Hashtbl.fold
      (fun key _ acc ->
         match String.index_opt key '\x00' with
         | Some i ->
           let tenant = String.sub key 0 i in
           let class_ = String.sub key (i + 1) (String.length key - i - 1) in
           (breaker_label tenant class_, key) :: acc
         | None -> (key, key) :: acc)
      t.breakers []
  in
  let labels = List.sort compare labels in
  List.concat_map
    (fun (label, key) ->
       List.map
         (fun (step, st) -> (step, label, Breaker.state_name st))
         (Breaker.transitions (Hashtbl.find t.breakers key)))
    labels

let breaker_stale_results t =
  Hashtbl.fold (fun _ b acc -> acc + Breaker.stale_results b) t.breakers 0

let pool_counters t = Pool.counters t.epoch.pool

(* ------------------------------------------------------------------ *)
(* Telemetry exposition                                                 *)
(* ------------------------------------------------------------------ *)

let registry t = t.registry

let headroom t = t.headroom

let counter_samples t =
  let mk name v = { Registry.name; help = ""; stable = true; value = Registry.Counter_v v } in
  [
    mk "accepted" t.c_accepted;
    mk "coalesced" t.c_coalesced;
    mk "rejected_queue_full" t.c_rej_queue;
    mk "rejected_breaker_open" t.c_rej_breaker;
    mk "rejected_memory_pressure" t.c_rej_memory;
    mk "rejected_overloaded" t.c_rej_overload;
    mk "completions" t.c_completions;
    mk "failures" t.c_failures;
    mk "cancelled" t.c_cancelled;
    mk "retries" t.c_retries;
    mk "timeouts" t.c_timeouts;
    mk "wedges" t.c_wedges;
    mk "quarantines" t.c_quarantines;
    mk "respawns" t.c_respawns;
    mk "duplicate_acks" t.c_dup_acks;
  ]

let metrics_snapshot ?stable_only t = Registry.snapshot ?stable_only t.registry

let metrics_text t = Openmetrics.render (Registry.snapshot t.registry)

let shutdown ?(reap = false) t =
  let stop ep ~join =
    Atomic.set ep.retired true;
    if join then begin
      (match ep.exec with
       | Some d ->
         Domain.join d;
         ep.exec <- None
       | None -> ());
      Pool.shutdown ep.pool
    end
    else Pool.kill ep.pool
  in
  stop t.epoch ~join:true;
  List.iter (fun ep -> stop ep ~join:reap) t.retired_epochs;
  if reap then t.retired_epochs <- []
