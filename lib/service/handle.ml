type 'a status = Queued | Running | Done of 'a

type 'a t = {
  id : int;
  tenant : string;
  mutable status : 'a status;
  mutable callbacks : ('a -> unit) list;  (* reverse registration order *)
}

let make ~id ~tenant = { id; tenant; status = Queued; callbacks = [] }

let id t = t.id

let tenant t = t.tenant

let status t = t.status

let is_done t = match t.status with Done _ -> true | _ -> false

let set_running t = if not (is_done t) then t.status <- Running

let set_queued t = if not (is_done t) then t.status <- Queued

let resolve t outcome =
  if not (is_done t) then begin
    t.status <- Done outcome;
    let cbs = List.rev t.callbacks in
    t.callbacks <- [];
    List.iter (fun f -> f outcome) cbs
  end

let on_done t f =
  match t.status with
  | Done outcome -> f outcome
  | Queued | Running -> t.callbacks <- f :: t.callbacks
