type config = { failure_threshold : int; cooldown : int; probe_budget : int }

let default_config = { failure_threshold = 5; cooldown = 16; probe_budget = 2 }

type state = Closed | Open | Half_open

let state_name = function Closed -> "closed" | Open -> "open" | Half_open -> "half_open"

type t = {
  cfg : config;
  mutable st : state;
  mutable streak : int;  (** consecutive failures while closed *)
  mutable opened_at : int;
  mutable probes_inflight : int;
  mutable probe_successes : int;
  mutable generation : int;  (** bumped on every state change *)
  mutable stale : int;  (** results ignored because their window had closed *)
  mutable trans : (int * state) list;  (** newest first *)
}

let create cfg =
  if cfg.failure_threshold < 1 then invalid_arg "Breaker: failure_threshold must be >= 1";
  if cfg.cooldown < 1 then invalid_arg "Breaker: cooldown must be >= 1";
  if cfg.probe_budget < 1 then invalid_arg "Breaker: probe_budget must be >= 1";
  {
    cfg;
    st = Closed;
    streak = 0;
    opened_at = 0;
    probes_inflight = 0;
    probe_successes = 0;
    generation = 0;
    stale = 0;
    trans = [];
  }

let goto t ~now st =
  t.st <- st;
  t.generation <- t.generation + 1;
  t.trans <- (now, st) :: t.trans

(* Lazy open → half-open transition: there is no timer thread, so an
   elapsed cooldown is noticed at the next query on the logical clock. *)
let sync t ~now =
  if t.st = Open && now - t.opened_at >= t.cfg.cooldown then begin
    t.probes_inflight <- 0;
    t.probe_successes <- 0;
    goto t ~now Half_open
  end

let state t ~now =
  sync t ~now;
  t.st

let generation t = t.generation

let stale_results t = t.stale

let admit t ~now =
  sync t ~now;
  match t.st with
  | Closed -> true
  | Open -> false
  | Half_open ->
    if t.probes_inflight < t.cfg.probe_budget then begin
      t.probes_inflight <- t.probes_inflight + 1;
      true
    end
    else false

(* Every record_* decision is taken under ONE logical-clock read: sync
   first (the only clock-driven transition), then compare the result's
   admission generation against the post-sync generation.  A result
   admitted under an older window — e.g. a job accepted while Closed
   whose failure lands during a later Half_open probe window, or a
   probe from a previous Half_open window — must neither consume the
   fresh probe budget nor reopen the breaker; it is counted stale and
   dropped.  Without the guard, two such decoupled results could both
   debit the single probe budget or flap the state on ancient news. *)
let fresh t ~now gen =
  sync t ~now;
  match gen with
  | None -> true
  | Some g ->
    if g = t.generation then true
    else begin
      t.stale <- t.stale + 1;
      false
    end

let record_success ?gen t ~now =
  if fresh t ~now gen then
    match t.st with
    | Closed -> t.streak <- 0
    | Open -> ()  (* a late ack from before the trip; nothing to do *)
    | Half_open ->
      t.probes_inflight <- max 0 (t.probes_inflight - 1);
      t.probe_successes <- t.probe_successes + 1;
      if t.probe_successes >= t.cfg.probe_budget then begin
        t.streak <- 0;
        goto t ~now Closed
      end

let record_failure ?gen t ~now =
  if fresh t ~now gen then
    match t.st with
    | Closed ->
      t.streak <- t.streak + 1;
      if t.streak >= t.cfg.failure_threshold then begin
        t.opened_at <- now;
        goto t ~now Open
      end
    | Open -> ()
    | Half_open ->
      (* a failed probe reopens with a fresh cooldown *)
      t.opened_at <- now;
      goto t ~now Open

let transitions t = List.rev t.trans
