type config = { failure_threshold : int; cooldown : int; probe_budget : int }

let default_config = { failure_threshold = 5; cooldown = 16; probe_budget = 2 }

type state = Closed | Open | Half_open

let state_name = function Closed -> "closed" | Open -> "open" | Half_open -> "half_open"

type t = {
  cfg : config;
  mutable st : state;
  mutable streak : int;  (** consecutive failures while closed *)
  mutable opened_at : int;
  mutable probes_inflight : int;
  mutable probe_successes : int;
  mutable trans : (int * state) list;  (** newest first *)
}

let create cfg =
  if cfg.failure_threshold < 1 then invalid_arg "Breaker: failure_threshold must be >= 1";
  if cfg.cooldown < 1 then invalid_arg "Breaker: cooldown must be >= 1";
  if cfg.probe_budget < 1 then invalid_arg "Breaker: probe_budget must be >= 1";
  {
    cfg;
    st = Closed;
    streak = 0;
    opened_at = 0;
    probes_inflight = 0;
    probe_successes = 0;
    trans = [];
  }

let goto t ~now st =
  t.st <- st;
  t.trans <- (now, st) :: t.trans

(* Lazy open → half-open transition: there is no timer thread, so an
   elapsed cooldown is noticed at the next query on the logical clock. *)
let sync t ~now =
  if t.st = Open && now - t.opened_at >= t.cfg.cooldown then begin
    t.probes_inflight <- 0;
    t.probe_successes <- 0;
    goto t ~now Half_open
  end

let state t ~now =
  sync t ~now;
  t.st

let admit t ~now =
  sync t ~now;
  match t.st with
  | Closed -> true
  | Open -> false
  | Half_open ->
    if t.probes_inflight < t.cfg.probe_budget then begin
      t.probes_inflight <- t.probes_inflight + 1;
      true
    end
    else false

let record_success t ~now =
  sync t ~now;
  match t.st with
  | Closed -> t.streak <- 0
  | Open -> ()  (* a late ack from before the trip; nothing to do *)
  | Half_open ->
    t.probes_inflight <- max 0 (t.probes_inflight - 1);
    t.probe_successes <- t.probe_successes + 1;
    if t.probe_successes >= t.cfg.probe_budget then begin
      t.streak <- 0;
      goto t ~now Closed
    end

let record_failure t ~now =
  sync t ~now;
  match t.st with
  | Closed ->
    t.streak <- t.streak + 1;
    if t.streak >= t.cfg.failure_threshold then begin
      t.opened_at <- now;
      goto t ~now Open
    end
  | Open -> ()
  | Half_open ->
    (* a failed probe reopens with a fresh cooldown *)
    t.opened_at <- now;
    goto t ~now Open

let transitions t = List.rev t.trans
