type level = Accept | Coalesce | Shed | Break

let level_name = function
  | Accept -> "accept"
  | Coalesce -> "coalesce"
  | Shed -> "shed"
  | Break -> "break"

let level_index = function Accept -> 0 | Coalesce -> 1 | Shed -> 2 | Break -> 3

let of_index = function 0 -> Accept | 1 -> Coalesce | 2 -> Shed | _ -> Break

type config = { coalesce_at : int; shed_at : int; break_at : int; calm_steps : int }

let default_config = { coalesce_at = 50; shed_at = 75; break_at = 90; calm_steps = 4 }

let validate cfg =
  if cfg.coalesce_at < 1 then invalid_arg "Ladder: coalesce_at must be >= 1";
  if cfg.shed_at < cfg.coalesce_at then invalid_arg "Ladder: shed_at must be >= coalesce_at";
  if cfg.break_at < cfg.shed_at then invalid_arg "Ladder: break_at must be >= shed_at";
  if cfg.calm_steps < 1 then invalid_arg "Ladder: calm_steps must be >= 1"

type t = {
  cfg : config;
  mutable lvl : level;
  mutable calm : int;  (* consecutive samples below the current rung's entry bar *)
  mutable trans : (int * level) list;  (* newest first *)
}

let create cfg =
  validate cfg;
  { cfg; lvl = Accept; calm = 0; trans = [] }

(* The rung a raw signal maps to, ignoring hysteresis. *)
let target_of t signal =
  if signal >= t.cfg.break_at then Break
  else if signal >= t.cfg.shed_at then Shed
  else if signal >= t.cfg.coalesce_at then Coalesce
  else Accept

let goto t ~now lvl =
  let from = t.lvl in
  t.lvl <- lvl;
  t.calm <- 0;
  t.trans <- (now, lvl) :: t.trans;
  Some (from, lvl)

let observe t ~now ~occupancy_pct ~pressure_pct =
  let signal = max occupancy_pct pressure_pct in
  let target = target_of t signal in
  let cur = level_index t.lvl and want = level_index target in
  if want > cur then
    (* degradation is immediate: overload cannot wait out a calm window *)
    goto t ~now target
  else if want < cur then begin
    (* recovery is hysteretic and one rung at a time *)
    t.calm <- t.calm + 1;
    if t.calm >= t.cfg.calm_steps then goto t ~now (of_index (cur - 1)) else None
  end
  else begin
    t.calm <- 0;
    None
  end

let level t = t.lvl

let transitions t = List.rev t.trans
