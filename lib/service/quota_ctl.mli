(** Adaptive controller for the DFDeques memory threshold K.

    The paper's K is the space/locality dial: DFDeques(K) runs in
    [S1 + O(K·p·D)] space (Theorem 4.4), so under memory pressure the
    {e principled} degradation is to shrink K — workers give up their
    deques sooner, the scheduler hews closer to the serial depth-first
    order, peak space falls, and throughput pays (more steals).  When
    pressure subsides, K regrows and locality returns.

    The control law is AIMD-shaped and integer-only (deterministic):

    - input: allocation pressure, bytes per control interval — the delta
      of the pool's [alloc_bytes] counter, optionally topped up with GC
      stats by the caller;
    - a 4:1 integer EWMA smooths the input;
    - smoothed pressure above [high_watermark] → K halves (multiplicative
      decrease), clamped to [k_min];
    - smoothed pressure at or below [low_watermark] for [recover_steps]
      consecutive intervals → K doubles (cautious recovery), clamped to
      [k_max].

    The controller is pure bookkeeping: the service applies the returned
    action to the pool ({!Dfd_runtime.Pool.set_quota}) and emits the
    [Quota_adjusted] trace event.  {!shedding} — K pinned at the floor
    with pressure still high — is the admission-control signal for
    [Memory_pressure] rejections. *)

type config = {
  k_init : int;  (** starting K (bytes); must lie in [[k_min, k_max]]. *)
  k_min : int;  (** floor: the tightest space bound we degrade to. *)
  k_max : int;  (** ceiling: full-locality K when memory is plentiful. *)
  high_watermark : int;  (** smoothed bytes/interval that trigger shrinking. *)
  low_watermark : int;  (** smoothed bytes/interval that count as calm. *)
  recover_steps : int;  (** consecutive calm intervals before regrowth. *)
}

val default_config : config

val validate : config -> unit
(** Raises [Invalid_argument] on non-positive bounds, [k_init] outside
    [[k_min, k_max]], [low_watermark > high_watermark], or
    [recover_steps < 1]. *)

type action =
  | Steady
  | Shrink of { from_quota : int; to_quota : int }
  | Grow of { from_quota : int; to_quota : int }

type t

val create : config -> t

val observe : t -> now:int -> pressure:int -> action
(** Feed one control interval's allocation pressure (bytes) at logical
    time [now]; returns the K adjustment to apply, if any. *)

val observe_headroom : t -> now:int -> Dfd_obs.Headroom.t -> cumulative_alloc:int -> action
(** Like {!observe}, but the pressure is taken {e through the headroom
    profiler's alloc-rate gauge}
    ({!Dfd_obs.Headroom.take_pressure} on [cumulative_alloc], the pool's
    monotone [alloc_bytes] counter): the controller and the telemetry
    plane see one number from one source instead of each re-deriving
    deltas.  Numerically identical to the historical inline
    [alloc_bytes] delta, so seeded trajectories are unchanged. *)

val quota : t -> int
(** The controller's current K. *)

val ewma : t -> int
(** The smoothed pressure (bytes/interval). *)

val shedding : t -> bool
(** K is pinned at [k_min] and smoothed pressure is still above the high
    watermark: shrinking can degrade no further, so admission control
    should shed load ([Memory_pressure]). *)

val trajectory : t -> (int * int) list
(** Every K change as [(step, new_K)], oldest first. *)
