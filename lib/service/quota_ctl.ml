type config = {
  k_init : int;
  k_min : int;
  k_max : int;
  high_watermark : int;
  low_watermark : int;
  recover_steps : int;
}

let default_config =
  {
    k_init = 50_000;
    k_min = 2_000;
    k_max = 50_000;
    high_watermark = 100_000;
    low_watermark = 20_000;
    recover_steps = 3;
  }

let validate c =
  if c.k_min <= 0 then invalid_arg "Quota_ctl: k_min must be positive";
  if c.k_max < c.k_min then invalid_arg "Quota_ctl: k_max must be >= k_min";
  if c.k_init < c.k_min || c.k_init > c.k_max then
    invalid_arg "Quota_ctl: k_init must lie in [k_min, k_max]";
  if c.high_watermark <= 0 then invalid_arg "Quota_ctl: high_watermark must be positive";
  if c.low_watermark < 0 || c.low_watermark > c.high_watermark then
    invalid_arg "Quota_ctl: low_watermark must lie in [0, high_watermark]";
  if c.recover_steps < 1 then invalid_arg "Quota_ctl: recover_steps must be >= 1"

type action =
  | Steady
  | Shrink of { from_quota : int; to_quota : int }
  | Grow of { from_quota : int; to_quota : int }

type t = {
  cfg : config;
  mutable k : int;
  mutable ewma : int;
  mutable calm : int;  (** consecutive intervals at or below the low watermark *)
  mutable traj : (int * int) list;  (** (step, new K), newest first *)
}

let create cfg =
  validate cfg;
  { cfg; k = cfg.k_init; ewma = 0; calm = 0; traj = [] }

let observe t ~now ~pressure =
  if pressure < 0 then invalid_arg "Quota_ctl.observe: negative pressure";
  (* 4:1 integer EWMA: responsive within a few intervals, yet one spike
     alone does not whipsaw K *)
  t.ewma <- ((3 * t.ewma) + pressure) / 4;
  if t.ewma > t.cfg.high_watermark then begin
    t.calm <- 0;
    if t.k > t.cfg.k_min then begin
      let from_quota = t.k in
      t.k <- max t.cfg.k_min (t.k / 2);
      t.traj <- (now, t.k) :: t.traj;
      Shrink { from_quota; to_quota = t.k }
    end
    else Steady (* already at the floor: shedding territory *)
  end
  else if t.ewma <= t.cfg.low_watermark then begin
    t.calm <- t.calm + 1;
    if t.calm >= t.cfg.recover_steps && t.k < t.cfg.k_max then begin
      t.calm <- 0;
      let from_quota = t.k in
      t.k <- min t.cfg.k_max (t.k * 2);
      t.traj <- (now, t.k) :: t.traj;
      Grow { from_quota; to_quota = t.k }
    end
    else Steady
  end
  else begin
    (* between the watermarks: hold position, reset the calm streak *)
    t.calm <- 0;
    Steady
  end

let observe_headroom t ~now hr ~cumulative_alloc =
  observe t ~now ~pressure:(Dfd_obs.Headroom.take_pressure hr ~cumulative_alloc)

let quota t = t.k

let ewma t = t.ewma

let shedding t = t.k = t.cfg.k_min && t.ewma > t.cfg.high_watermark

let trajectory t = List.rev t.traj
