(** A multi-tenant, supervised front door over {!Dfd_runtime.Pool}.

    [Pool.run] is a one-shot, fail-open entry point: an unhandled worker
    wedge, a saturated queue, or sustained memory pressure has no
    recovery path, and a single greedy caller starves every other one.
    This module owns both problems:

    - {b Non-blocking admission} — {!submit} never blocks and never
      runs the job inline: it returns a {!handle} immediately.  The
      caller observes progress through {!poll} / {!await} / completion
      callbacks ({!Handle.on_done}) and may {!cancel} a job that has not
      started.
    - {b Weighted-fair isolation} ({!Tenant}, {!Fair_queue}) — each
      tenant owns a bounded lane dispatched by deficit round-robin, its
      own circuit breakers, and (under [Dfdeques]) its own adaptive-K
      budget.  A bully tenant can exhaust only its own lane, trip only
      its own breakers and shrink only its own K — the admission-level
      analogue of the paper's per-deque isolation.
    - {b Graceful degradation} ({!Ladder}) — as queue occupancy or
      allocation pressure climbs, the service walks an explicit
      backpressure ladder: accept → coalesce duplicate jobs → shed the
      lowest-weight tenant ([Overloaded]) → admit only the
      highest-weight tenant.  Every rung change is traced
      ([Ladder_shift]) and counted; recovery is hysteretic so the
      ladder never flaps.
    - {b Deadlines and retries} — each attempt runs under
      [Pool.run ?timeout]; failures and timeouts are retried under a
      seeded full-jitter backoff policy ({!Retry}) with a per-job budget.
    - {b Supervision} — jobs execute on a dedicated executor domain; the
      driver watches {!Dfd_runtime.Pool.heartbeat} while an attempt is in
      flight.  When the pool stalls for [wedge_grace] seconds the driver
      tries {e surgical quarantine} first: a worker that crashed (raised
      its certificate) or wedged inside the scheduler — holding a
      taken-but-unstarted task with its per-worker activity clock flat —
      is quarantined in place ({!Dfd_runtime.Pool.quarantine}); its held
      task is recovered exactly once, the pool continues degraded at
      [p-1] (the Theorem-4.4 budget gauge shrinks with it), and the slot
      may be refilled under [worker_respawn_budget].  Only when no slot
      is quarantinable — e.g. a worker stuck inside user code, which has
      already {e started} its task — does the stall escalate to the
      wholesale verdict: the pool is killed, a fresh pool and executor
      are spawned, and the in-flight job is requeued {e exactly once} at
      the front — the ledger guarantees zero lost jobs and zero
      duplicated completion acknowledgements (a late result from a
      retired epoch is structurally ignored).
    - {b Per-(tenant, class) circuit breakers} ({!Breaker}) —
      consecutive failures trip a breaker open; submissions are rejected
      during the cooldown; half-open probes decide recovery.  Results
      are generation-tagged at admission so a stale result from an older
      breaker window can neither consume the probe budget nor flip the
      state.
    - {b Per-tenant adaptive K} ({!Quota_ctl}) — under a [Dfdeques]
      policy each tenant's observed allocation pressure drives {e its}
      memory threshold K down toward the Theorem 4.4 space bound and
      back up when pressure subsides; each dispatch applies the job's
      tenant K to the pool ([Pool.run ?quota]), so one tenant degrading
      to K = k_min never costs its neighbours their locality.

    The service is {e step-driven} from one driver thread: {!step}
    advances a logical clock by one, promotes due retries, samples the
    backpressure ladder, dispatches at most one queued attempt (in DRR
    order) to completion, and runs the quota-control interval.  All
    scheduling decisions (DRR order, retry delays, breaker / quota /
    ladder trajectories, rejection reasons, latencies in steps) are
    functions of the seed and the submission order, never of wall-clock
    time — which is what makes `repro soak` reports byte-identical per
    seed.  Only the {e timing} inside the pool is nondeterministic;
    outcome classes are not. *)

type reject_reason =
  | Queue_full  (** the tenant's own lane (queued + retrying + in flight) is at its bound. *)
  | Breaker_open of string
      (** the job's breaker is open; the payload is the breaker label
          (["class"] for the default tenant, ["tenant/class"] otherwise). *)
  | Memory_pressure
      (** the tenant's adaptive K is pinned at its floor with pressure
          still high: shrinking can degrade no further. *)
  | Overloaded
      (** the backpressure ladder is at [Shed] (lowest-weight tenants
          rejected) or [Break] (all but the highest-weight rejected). *)

val reject_reason_name : reject_reason -> string
(** "queue_full" / "breaker_open" / "memory_pressure" / "overloaded". *)

type outcome =
  | Completed
  | Failed of string  (** retry budget exhausted; the last error. *)
  | Rejected of reject_reason  (** shed at admission; assigned synchronously by {!submit}. *)
  | Cancelled  (** {!cancel} removed the job before it ran. *)

type handle = outcome Handle.t
(** The caller's view of one submission; see {!Handle}. *)

type config = {
  seed : int;  (** master seed for every retry stream. *)
  tenants : Tenant.t list;
      (** the admission lanes; must be non-empty with unique names.
          Single-tenant services use [[Tenant.default]]. *)
  ladder : Ladder.config;  (** overload backpressure thresholds. *)
  retry : Retry.policy;
  breaker : Breaker.config;
  quota_ctl : Quota_ctl.config option;
      (** [Some template] enables a per-tenant adaptive-K controller
          (Dfdeques pools only; ignored under Work_stealing).  A tenant
          with its own [Tenant.quota] overrides the template. *)
  default_deadline : float option;  (** per-attempt [Pool.run] timeout, seconds. *)
  wedge_grace : float;
      (** seconds without pool heartbeat progress (while an attempt is in
          flight) before the pool is declared wedged and respawned.  Must
          exceed the longest fork-free stretch of any legitimate job. *)
  domains : int;  (** extra worker domains per pool incarnation. *)
  max_respawns : int;  (** hard cap on pool respawns before {!Supervisor_giveup}. *)
  worker_respawn_budget : int;
      (** how many quarantined worker slots each pool incarnation may
          refill with fresh domains ([Pool.respawn_worker]); 0 (the
          default) leaves quarantined slots dead, running degraded until
          the wholesale respawn backstop fires. *)
  on_pool_retired : (in_flight:int option -> unit) option;
      (** called after a wedged pool is killed, with the requeued job's
          id; test harnesses use it to release their wedge tasks so the
          abandoned domain can exit and be reaped. *)
}

val default_config : config
(** seed 0, the single [Tenant.default] lane, {!Ladder.default_config},
    {!Retry.default}, {!Breaker.default_config}, no quota controller, no
    default deadline, grace 5 s, 2 extra domains, 8 respawns, no worker
    respawn budget. *)

exception Supervisor_giveup of string
(** More than [max_respawns] pool respawns: the supervisor refuses to
    keep restarting a pool that keeps wedging. *)

type t

val create :
  ?tracer:Dfd_trace.Tracer.t ->
  ?fault:Dfd_fault.Fault.t ->
  ?registry:Dfd_obs.Registry.t ->
  ?flight_dir:string ->
  ?headroom_s1:int ->
  ?headroom_depth:int ->
  ?config:config ->
  Dfd_runtime.Pool.policy ->
  t
(** Start the service: spawns the first pool incarnation and its
    executor domain.  Under [Dfdeques], enabled quota controllers
    override the policy's initial K with the largest tenant [k_init].

    [fault] (default {!Dfd_fault.Fault.none}) is a seeded injector
    threaded into every pool incarnation — chaos campaigns arm the
    one-shot crash/wedge triggers through it to drive the supervisor's
    surgical-quarantine path deterministically.

    [registry] (default: a fresh private {!Dfd_obs.Registry.t}) receives
    the service's stable [dfd_service_*] probes (including per-tenant
    lanes labelled [tenant="..."]), the pool's unstable [dfd_pool_*]
    instruments (series continuous across respawns), and the
    [policy="service"] {!Dfd_obs.Headroom} gauge family.  Pass
    {!Dfd_obs.Registry.disabled} to run with zero-cost telemetry.

    [flight_dir], when set, enables crash forensics: on a wedge, an
    attempt timeout, or a supervisor give-up, the current incarnation's
    flight-recorder ring is dumped to
    [flight_dir/flight_<reason>_step<clock>.json] (best-effort; dump
    failures never mask the fault being reported).

    [headroom_s1] / [headroom_depth] (default 0) are configuration
    estimates of serial space and dag depth for the Theorem-4.4 budget
    gauge — the service cannot derive them because the dag is unknown
    until executed; the simulator path computes them exactly. *)

val submit :
  t ->
  ?tenant:string ->
  ?class_:string ->
  ?key:string ->
  ?deadline:float ->
  ?on_done:(outcome -> unit) ->
  (unit -> unit) ->
  handle
(** Offer a job to [tenant]'s lane (default ["default"]; unknown tenants
    raise [Invalid_argument]).  Never blocks, never runs the job inline:
    the returned handle is either [Queued] (admitted — possibly
    {e coalesced} onto an already-queued job with the same [(tenant,
    key)] when the ladder is at [Coalesce] or beyond) or already
    [Done (Rejected _)] (shed, with the reason also recorded in the
    ledger).  [key] marks the job idempotent for coalescing; jobs
    without a key are never coalesced.  [deadline] overrides the
    config's per-attempt timeout.  [on_done] is registered on the handle
    before admission is decided, so even a synchronous rejection fires
    it.  The work closure runs inside [Pool.run] on the executor domain,
    so it may use [Pool.fork_join], [Pool.alloc_hint], etc.

    Admission checks run in a fixed order — overload ladder, tenant
    memory pressure, coalescing, lane capacity, circuit breaker — so a
    duplicate is coalesced rather than counted against the full lane,
    and a breaker probe slot is never burned on a job that would have
    been shed anyway. *)

val admission : handle -> (int, reject_reason) result
(** [Ok id] — the submission was admitted (queued or coalesced);
    [Error r] — it was shed synchronously.  Sound to call right after
    {!submit} because [Rejected] is only ever assigned at admission. *)

val poll : handle -> outcome Handle.status
(** Alias for {!Handle.status}. *)

val await : ?max_steps:int -> t -> handle -> outcome option
(** Drive {!step} until the handle is terminal; [None] if [max_steps]
    (default 10_000) elapse first.  Single-driver-thread only. *)

val cancel : t -> handle -> bool
(** Remove a not-yet-started job: queued, waiting between retries, or
    riding another job as a coalesced follower.  On success the job is
    acknowledged [Cancelled] (callbacks fire) and [true] is returned;
    cancelling a queued {e primary} also cancels every follower riding
    it.  [false] if the job already started or finished. *)

val step : t -> unit
(** Advance the logical clock by one: promote due retries, sample the
    backpressure ladder, dispatch and fully execute at most one queued
    attempt (in DRR order, under the job's tenant K, blocking, with
    wedge supervision), then run the quota-control interval. *)

val drive : ?max_steps:int -> t -> unit
(** {!step} until the service is idle (no queued jobs, no pending
    retries) or [max_steps] (default 10_000) steps have elapsed. *)

val now : t -> int
(** The logical clock (number of {!step}s so far). *)

val idle : t -> bool

type counters = {
  accepted : int;
  coalesced : int;  (** submissions that rode an already-queued job. *)
  rejected_queue_full : int;
  rejected_breaker_open : int;
  rejected_memory_pressure : int;
  rejected_overloaded : int;  (** shed by the backpressure ladder. *)
  completions : int;
  failures : int;
  cancelled : int;
  retries : int;  (** re-attempts scheduled with backoff. *)
  timeouts : int;  (** attempts that hit their deadline. *)
  wedges : int;  (** pool incarnations declared wedged. *)
  quarantines : int;
      (** workers surgically quarantined inside a live pool instead of a
          wholesale respawn. *)
  respawns : int;  (** fresh pool incarnations after a wedge. *)
  duplicate_acks : int;  (** terminal acks refused because one landed already; 0 in a correct run. *)
}

val counters : t -> counters

(** Per-tenant isolation report (deterministic per seed). *)
type tenant_stats = {
  ts_name : string;
  ts_weight : int;
  ts_bound : int;
  ts_accepted : int;
  ts_coalesced : int;
  ts_completions : int;
  ts_failures : int;
  ts_cancelled : int;
  ts_rejected_queue_full : int;
  ts_rejected_breaker_open : int;
  ts_rejected_memory_pressure : int;
  ts_rejected_overloaded : int;
  ts_first_shed : int option;  (** first step at which the ladder shed this tenant. *)
  ts_peak_depth : int;  (** high watermark of the tenant's queued jobs. *)
  ts_latency : Dfd_structures.Stats.Histogram.t;
      (** completion latency in steps (submit → terminal ack), completed
          jobs and their coalesced followers. *)
  ts_quota : int option;  (** the tenant's current K; [None] without a controller. *)
  ts_quota_trajectory : (int * int) list;
}

val tenant_stats : t -> tenant_stats list
(** One entry per tenant, in registration (= DRR) order. *)

type entry = {
  job : int;
  tenant : string;
  class_ : string;
  attempts : int;  (** attempts consumed (0 for rejected/coalesced/cancelled jobs). *)
  requeues : int;  (** wedge requeues (each exactly one per wedge). *)
  outcome : outcome option;  (** [None] only while still queued/retrying. *)
}

val ledger : t -> entry list
(** Every submission ever offered, in id order. *)

val verify_ledger : t -> (unit, string) result
(** The exactly-once audit, meaningful once {!idle}: every entry carries
    exactly one terminal outcome (no lost jobs), no duplicate
    acknowledgements were attempted, and the counters are consistent
    with the entries (accepted + coalesced + rejected = submissions).
    [Error msg] pinpoints the first violation. *)

val quota : t -> int option
(** The largest current per-tenant K — the value the Theorem-4.4 budget
    gauge is computed from ([None] under Work_stealing). *)

val quota_trajectory : t -> (int * int) list
(** All tenants' K changes as [(step, new_K)] merged in step order
    (stable within a step by tenant registration order); empty without a
    controller.  With a single tenant this is exactly that tenant's
    trajectory. *)

val ladder_level : t -> Ladder.level
(** The backpressure ladder's current rung. *)

val ladder_transitions : t -> (int * Ladder.level) list
(** Every rung change as [(step, new_level)], oldest first. *)

val breaker_transitions : t -> (int * string * string) list
(** Every breaker state change as [(step, label, state)], sorted by
    label then step — deterministic for the soak report.  Labels are
    ["class"] for the default tenant and ["tenant/class"] otherwise. *)

val breaker_stale_results : t -> int
(** Results dropped across all breakers because their admission window
    had closed (see {!Breaker.stale_results}). *)

val pool_counters : t -> Dfd_runtime.Pool.counters
(** Counters of the {e current} pool incarnation. *)

val registry : t -> Dfd_obs.Registry.t
(** The telemetry registry this service publishes into. *)

val headroom : t -> Dfd_obs.Headroom.t
(** The [policy="service"] Theorem-4.4 gauge family.  The live gauge is
    fed the per-attempt allocation delta (a deterministic live-space
    proxy), so [peak <= budget] is a checkable, seeded acceptance
    condition. *)

val counter_samples : t -> Dfd_obs.Registry.sample list
(** The supervision counters as registry samples (short legacy names:
    ["accepted"], ["rejected_queue_full"], … plus ["coalesced"],
    ["rejected_overloaded"], ["cancelled"]) — the key set the soak
    report's counters object uses; render with
    {!Dfd_obs.Registry.Snapshot.to_flat_json}. *)

val metrics_snapshot : ?stable_only:bool -> t -> Dfd_obs.Registry.sample list
(** Snapshot the registry (see {!Dfd_obs.Registry.snapshot}).  With
    [~stable_only:true] the result is a pure function of (seed,
    submission order) and may be embedded in byte-deterministic
    reports. *)

val metrics_text : t -> string
(** The full registry rendered as OpenMetrics v1 text. *)

val shutdown : ?reap:bool -> t -> unit
(** Stop the executor and the current pool.  [reap] (default [false])
    additionally joins retired (wedged) incarnations — only safe once
    their stuck tasks have been released (see [on_pool_retired]);
    without it they are abandoned. *)
