(** A long-lived, supervised job service wrapping {!Dfd_runtime.Pool}.

    [Pool.run] is a one-shot, fail-open entry point: an unhandled worker
    wedge, a saturated queue, or sustained memory pressure has no
    recovery path.  This module owns that path:

    - {b Admission control} — a bounded submission queue; submissions are
      accepted or rejected with a typed {!reject_reason} (queue full,
      circuit breaker open for the job's class, memory pressure).
    - {b Deadlines and retries} — each attempt runs under
      [Pool.run ?timeout]; failures and timeouts are retried under a
      seeded full-jitter backoff policy ({!Retry}) with a per-job budget.
    - {b Supervision} — jobs execute on a dedicated executor domain; the
      driver watches {!Dfd_runtime.Pool.heartbeat} while an attempt is in
      flight.  If the pool stops making progress for [wedge_grace]
      seconds (a task looping beyond the reach of cooperative
      cancellation), the pool is declared wedged: it is killed
      ({!Dfd_runtime.Pool.kill}), a fresh pool and executor are spawned,
      and the in-flight job is requeued {e exactly once} at the front —
      the ledger guarantees zero lost jobs and zero duplicated
      completion acknowledgements (a late result from a retired epoch is
      structurally ignored).
    - {b Per-class circuit breakers} ({!Breaker}) — consecutive failures
      of a class trip it open; submissions are rejected during the
      cooldown; half-open probes decide recovery.
    - {b Adaptive K} ({!Quota_ctl}) — under a [Dfdeques] policy the
      observed allocation pressure (the pool's [alloc_bytes] counter)
      drives the memory threshold K down toward the Theorem 4.4 space
      bound and back up when pressure subsides, emitting
      [Quota_adjusted] trace events.

    The service is {e step-driven} from one driver thread: {!step}
    advances a logical clock by one, promotes due retries, runs the
    quota-control interval, and executes at most one queued job attempt
    to completion.  All scheduling decisions (retry delays, breaker and
    quota trajectories, rejection reasons) are functions of the seed and
    the submission order, never of wall-clock time — which is what makes
    `repro soak` reports byte-identical per seed.  Only the {e timing}
    inside the pool is nondeterministic; outcome classes are not. *)

type reject_reason =
  | Queue_full
  | Breaker_open of string  (** the job's class whose breaker is open. *)
  | Memory_pressure

val reject_reason_name : reject_reason -> string
(** "queue_full" / "breaker_open" / "memory_pressure". *)

type outcome =
  | Completed
  | Failed of string  (** retry budget exhausted; the last error. *)
  | Rejected of reject_reason

type config = {
  seed : int;  (** master seed for every retry stream. *)
  queue_capacity : int;  (** bound on queued (not yet dispatched) jobs. *)
  retry : Retry.policy;
  breaker : Breaker.config;
  quota_ctl : Quota_ctl.config option;
      (** [Some _] enables the adaptive-K controller (Dfdeques pools
          only; ignored under Work_stealing). *)
  default_deadline : float option;  (** per-attempt [Pool.run] timeout, seconds. *)
  wedge_grace : float;
      (** seconds without pool heartbeat progress (while an attempt is in
          flight) before the pool is declared wedged and respawned.  Must
          exceed the longest fork-free stretch of any legitimate job. *)
  domains : int;  (** extra worker domains per pool incarnation. *)
  max_respawns : int;  (** hard cap on pool respawns before {!Supervisor_giveup}. *)
  on_pool_retired : (in_flight:int option -> unit) option;
      (** called after a wedged pool is killed, with the requeued job's
          id; test harnesses use it to release their wedge tasks so the
          abandoned domain can exit and be reaped. *)
}

val default_config : config
(** seed 0, capacity 64, {!Retry.default}, {!Breaker.default_config},
    no quota controller, no default deadline, grace 5 s, 2 extra
    domains, 8 respawns. *)

exception Supervisor_giveup of string
(** More than [max_respawns] pool respawns: the supervisor refuses to
    keep restarting a pool that keeps wedging. *)

type t

val create :
  ?tracer:Dfd_trace.Tracer.t ->
  ?registry:Dfd_obs.Registry.t ->
  ?flight_dir:string ->
  ?headroom_s1:int ->
  ?headroom_depth:int ->
  ?config:config ->
  Dfd_runtime.Pool.policy ->
  t
(** Start the service: spawns the first pool incarnation and its
    executor domain.  Under [Dfdeques], an enabled quota controller
    overrides the policy's initial K with its own [k_init].

    [registry] (default: a fresh private {!Dfd_obs.Registry.t}) receives
    the service's stable [dfd_service_*] probes, the pool's unstable
    [dfd_pool_*] instruments (series continuous across respawns), and
    the [policy="service"] {!Dfd_obs.Headroom} gauge family.  Pass
    {!Dfd_obs.Registry.disabled} to run with zero-cost telemetry.

    [flight_dir], when set, enables crash forensics: on a wedge, an
    attempt timeout, or a supervisor give-up, the current incarnation's
    flight-recorder ring is dumped to
    [flight_dir/flight_<reason>_step<clock>.json] (best-effort; dump
    failures never mask the fault being reported).

    [headroom_s1] / [headroom_depth] (default 0) are configuration
    estimates of serial space and dag depth for the Theorem-4.4 budget
    gauge — the service cannot derive them because the dag is unknown
    until executed; the simulator path computes them exactly. *)

val submit :
  t -> ?class_:string -> ?deadline:float -> (unit -> unit) -> (int, reject_reason) result
(** Offer a job (default class ["default"]).  [Ok id] — accepted and
    queued; [Error reason] — shed, with the reason recorded in the
    ledger under the same id scheme.  [deadline] overrides the config's
    per-attempt timeout.  The work closure runs inside [Pool.run] on the
    executor domain, so it may use [Pool.fork_join], [Pool.alloc_hint],
    etc. *)

val step : t -> unit
(** Advance the logical clock by one: promote due retries, run one
    quota-control interval, then dispatch and fully execute at most one
    queued attempt (blocking, with wedge supervision). *)

val drive : ?max_steps:int -> t -> unit
(** {!step} until the service is idle (no queued jobs, no pending
    retries) or [max_steps] (default 10_000) steps have elapsed. *)

val now : t -> int
(** The logical clock (number of {!step}s so far). *)

val idle : t -> bool

type counters = {
  accepted : int;
  rejected_queue_full : int;
  rejected_breaker_open : int;
  rejected_memory_pressure : int;
  completions : int;
  failures : int;
  retries : int;  (** re-attempts scheduled with backoff. *)
  timeouts : int;  (** attempts that hit their deadline. *)
  wedges : int;  (** pool incarnations declared wedged. *)
  respawns : int;  (** fresh pool incarnations after a wedge. *)
  duplicate_acks : int;  (** terminal acks refused because one landed already; 0 in a correct run. *)
}

val counters : t -> counters

type entry = {
  job : int;
  class_ : string;
  attempts : int;  (** attempts consumed (0 for rejected jobs). *)
  requeues : int;  (** wedge requeues (each exactly one per wedge). *)
  outcome : outcome option;  (** [None] only while still queued/retrying. *)
}

val ledger : t -> entry list
(** Every submission ever offered, in id order. *)

val verify_ledger : t -> (unit, string) result
(** The exactly-once audit, meaningful once {!idle}: every entry carries
    exactly one terminal outcome (no lost jobs), no duplicate
    acknowledgements were attempted, and the counters are consistent
    with the entries.  [Error msg] pinpoints the first violation. *)

val quota : t -> int option
(** Current memory threshold K ([None] under Work_stealing). *)

val quota_trajectory : t -> (int * int) list
(** The adaptive controller's K changes as [(step, new_K)], oldest
    first; empty without a controller. *)

val breaker_transitions : t -> (int * string * string) list
(** Every breaker state change as [(step, class, state)], sorted by
    class then step — deterministic for the soak report. *)

val pool_counters : t -> Dfd_runtime.Pool.counters
(** Counters of the {e current} pool incarnation. *)

val registry : t -> Dfd_obs.Registry.t
(** The telemetry registry this service publishes into. *)

val headroom : t -> Dfd_obs.Headroom.t
(** The [policy="service"] Theorem-4.4 gauge family. *)

val counter_samples : t -> Dfd_obs.Registry.sample list
(** The supervision counters as registry samples (short legacy names:
    ["accepted"], ["rejected_queue_full"], …) — the exact key set and
    order the soak report's counters object has always used; render with
    {!Dfd_obs.Registry.Snapshot.to_flat_json}. *)

val metrics_snapshot : ?stable_only:bool -> t -> Dfd_obs.Registry.sample list
(** Snapshot the registry (see {!Dfd_obs.Registry.snapshot}).  With
    [~stable_only:true] the result is a pure function of (seed,
    submission order) and may be embedded in byte-deterministic
    reports. *)

val metrics_text : t -> string
(** The full registry rendered as OpenMetrics v1 text. *)

val shutdown : ?reap:bool -> t -> unit
(** Stop the executor and the current pool.  [reap] (default [false])
    additionally joins retired (wedged) incarnations — only safe once
    their stuck tasks have been released (see [on_pool_retired]);
    without it they are abandoned. *)
