(** The overload backpressure ladder: graceful degradation in four rungs.

    The front door never falls off a cliff — as load climbs, it walks
    down an explicit ladder, and each rung sheds {e less important} work
    first:

    - {b Accept} — normal admission.
    - {b Coalesce} — duplicate jobs (same tenant and idempotency key)
      ride an already-queued primary instead of occupying a second
      slot.  Cheap, lossless for idempotent work.
    - {b Shed} — new submissions from the {e lowest-weight} tenant are
      rejected ([Overloaded]); higher-weight tenants are still served.
      The bully (which is what usually drove the queues up) pays first.
    - {b Break} — only the highest-weight tenant is still admitted;
      everything else is rejected.  The service keeps a heartbeat
      instead of wedging.

    The ladder is driven by two smoothed signals sampled once per
    driver step: queue {e occupancy} (total queued jobs as a percentage
    of the aggregate bound) and allocation {e pressure} (the headroom
    profiler's bytes/step as a percentage of the Theorem 4.4 budget
    rate).  The rung is the highest one whose threshold the combined
    signal exceeds; [calm_steps] consecutive below-threshold samples
    are required before climbing back up one rung (hysteresis), so the
    ladder never flaps on a single quiet step.  All integer arithmetic
    on the logical clock — trajectories are deterministic per seed. *)

type level = Accept | Coalesce | Shed | Break

val level_name : level -> string
(** "accept" / "coalesce" / "shed" / "break". *)

val level_index : level -> int
(** Accept 0 … Break 3. *)

type config = {
  coalesce_at : int;  (** signal %% that enters Coalesce (0 < c <= s). *)
  shed_at : int;  (** signal %% that enters Shed. *)
  break_at : int;  (** signal %% that enters Break (s <= b <= 100+). *)
  calm_steps : int;  (** consecutive calm samples before stepping back up (>= 1). *)
}

val default_config : config
(** coalesce at 50%%, shed at 75%%, break at 90%%, 4 calm steps. *)

val validate : config -> unit

type t

val create : config -> t

val observe : t -> now:int -> occupancy_pct:int -> pressure_pct:int -> (level * level) option
(** Feed one driver step's signals; returns [Some (from, to_)] when the
    rung changed.  The effective signal is [max occupancy pressure]:
    either full queues {e or} memory pressure is enough to degrade. *)

val level : t -> level

val transitions : t -> (int * level) list
(** Every rung change as [(step, new_level)], oldest first. *)
