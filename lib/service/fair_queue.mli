(** Weighted-fair admission queues: one bounded FIFO per tenant,
    dispatched by deficit round-robin.

    Dispatch walks the tenants in registration order; entering a
    tenant's turn grants it [weight] credits (one credit = one job, the
    DRR quantum), and the turn ends when the credits are spent {e or}
    the tenant's queue drains (an empty lane forfeits its leftover
    credit — the scheduler is work-conserving).  Over any interval in
    which a set of tenants stays backlogged, each backlogged tenant's
    dispatch count is within one quantum (its weight) of its
    weight-proportional share — the property [test_service] checks with
    qcheck.

    Everything is driven from the service's single driver thread and is
    a pure function of the push/pop call sequence, so fair-queue
    decisions never break the soak report's byte-determinism. *)

type 'a t

val create : unit -> 'a t

val add_tenant : 'a t -> name:string -> weight:int -> bound:int -> unit
(** Register a lane.  Raises [Invalid_argument] on duplicates, a
    non-positive weight or a non-positive bound. *)

val tenants : 'a t -> string list
(** Lane names in registration (= dispatch) order. *)

val weight : 'a t -> string -> int

val bound : 'a t -> string -> int

val min_weight : 'a t -> int
(** The smallest registered weight (the lane the overload ladder sheds
    first).  Raises [Invalid_argument] when no tenant is registered. *)

val push : 'a t -> tenant:string -> 'a -> (unit, [ `Queue_full ]) result
(** Append to the lane's FIFO; [Error `Queue_full] once the lane holds
    [bound] jobs. *)

val push_force : 'a t -> tenant:string -> 'a -> unit
(** Append ignoring the bound — for retries of already-admitted jobs
    (the service accounts pending retries against the bound at
    admission, so a forced push cannot exceed it in a correct driver). *)

val push_front : 'a t -> tenant:string -> 'a -> unit
(** Prepend ignoring the bound — for exactly-once wedge requeues. *)

val pop : 'a t -> (string * 'a) option
(** Next [(tenant, job)] in DRR order; [None] when every lane is
    empty. *)

val remove : 'a t -> tenant:string -> ('a -> bool) -> 'a option
(** Remove and return the first queued job satisfying the predicate
    (for cancellation); [None] if no queued job matches. *)

val depth : 'a t -> string -> int
(** Jobs currently queued in the lane. *)

val peak_depth : 'a t -> string -> int
(** High watermark of {!depth} over the queue's lifetime. *)

val total : 'a t -> int
(** Jobs queued across all lanes. *)

val total_bound : 'a t -> int
(** Sum of the per-lane bounds (the occupancy denominator for the
    backpressure ladder). *)
