(** Seeded full-jitter retry/backoff policy.

    A policy bounds how many times a job may be attempted and how long to
    wait between attempts.  Delays follow {e full jitter} over a capped
    exponential ramp: the delay before retry [n] (the n-th re-attempt,
    1-based) is drawn uniformly from [[1, min max_delay (base_delay·2ⁿ⁻¹)]]
    — contending retries decorrelate instead of colliding in lockstep,
    exactly the scheme the pool uses for steal backoff.

    Delays are {e logical steps} of the service's clock, not wall-clock
    time, and every draw comes from one explicit
    {!Dfd_structures.Prng} stream derived from [(seed, job id)], so a
    retry schedule is a pure function of the seed — the property that
    makes soak reports byte-identical per seed. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first (>= 1). *)
  base_delay : int;  (** exponential ramp base, in logical steps (>= 1). *)
  max_delay : int;  (** cap on any single delay, in logical steps. *)
}

val default : policy
(** 4 attempts, base 1, cap 16. *)

val validate : policy -> unit
(** Raises [Invalid_argument] unless
    [max_attempts >= 1 && 1 <= base_delay <= max_delay]. *)

type t
(** One job's retry state: its private PRNG stream and attempt counter. *)

val create : policy -> seed:int -> job:int -> t
(** The stream for job [job] under master [seed]; equal [(seed, job)]
    pairs yield byte-identical schedules. *)

val policy : t -> policy

val attempts : t -> int
(** Attempts consumed so far: starts at 0, bumped by {!next_delay},
    monotone, clamped at [max_attempts] — the budget is never exceeded
    even if {!next_delay} keeps being called after exhaustion. *)

val next_delay : t -> int option
(** Consume one attempt.  [Some d] — retry after [d] logical steps
    (1 <= d <= max_delay); [None] — the retry budget is exhausted.  The
    first call accounts for the initial attempt and the budget ceiling:
    a policy with [max_attempts = n] yields exactly [n - 1] delays. *)

val schedule : policy -> seed:int -> job:int -> int list
(** The full delay schedule ([max_attempts - 1] delays) this stream would
    produce — what {!next_delay} returns across a job's lifetime, in
    order.  Pure; used by the property tests. *)

val is_terminal : exn -> bool
(** Is this exception class {e terminal} — deterministic, so a retry is
    guaranteed to fail identically and would only burn the budget?
    Built-ins: [Invalid_argument], [Assert_failure], [Match_failure],
    [Undefined_recursive_module].  Extended by {!register_terminal};
    the service registers its [Supervisor_giveup] this way.  The
    executor consults this on every attempt exception so a terminal
    failure is acknowledged [Failed] immediately instead of cycling
    through the backoff schedule. *)

val register_terminal : (exn -> bool) -> unit
(** Register an additional terminal-exception predicate (used by layers
    whose exception types this module cannot name).  Predicates are
    consulted by {!is_terminal} in any order; they must be pure. *)
