type t = {
  name : string;
  weight : int;
  queue_bound : int;
  quota : Quota_ctl.config option;
}

let make ?(weight = 1) ?(queue_bound = 64) ?quota name = { name; weight; queue_bound; quota }

let default = make "default"

let validate t =
  if t.name = "" then invalid_arg "Tenant: name must be non-empty";
  if t.weight < 1 then invalid_arg (Printf.sprintf "Tenant %s: weight must be >= 1" t.name);
  if t.queue_bound < 1 then
    invalid_arg (Printf.sprintf "Tenant %s: queue_bound must be >= 1" t.name);
  match t.quota with None -> () | Some q -> Quota_ctl.validate q

let validate_all ts =
  if ts = [] then invalid_arg "Tenant: at least one tenant required";
  List.iter validate ts;
  let names = List.map (fun t -> t.name) ts in
  let sorted = List.sort_uniq compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Tenant: duplicate tenant names"
