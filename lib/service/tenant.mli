(** Tenant descriptors for the multi-tenant front door.

    A tenant is one admission lane of the service: it owns a bounded
    queue inside {!Fair_queue}, a deficit-round-robin weight (its
    guaranteed share of dispatch slots under contention), its own
    circuit breakers, and — under a [Dfdeques] pool — its own adaptive
    memory-threshold budget ({!Quota_ctl}).  Isolation is the point:
    one tenant exhausting its queue, tripping its breakers or blowing
    its K budget degrades only that tenant's lane, never its
    neighbours' (the admission-level analogue of the paper's per-deque
    locality regions). *)

type t = {
  name : string;  (** unique lane name; ["default"] is the implicit single lane. *)
  weight : int;  (** DRR weight [>= 1]: dispatch share under contention. *)
  queue_bound : int;
      (** bound on the tenant's in-service load (queued + pending
          retries + in flight), [>= 1]. *)
  quota : Quota_ctl.config option;
      (** per-tenant adaptive-K budget; [None] inherits the service
          config's template (or runs without one under
          [Work_stealing]). *)
}

val make : ?weight:int -> ?queue_bound:int -> ?quota:Quota_ctl.config -> string -> t
(** [make name] with weight 1 and bound 64. *)

val default : t
(** The single implicit lane: name ["default"], weight 1, bound 64. *)

val validate : t -> unit
(** Raises [Invalid_argument] on an empty name, a non-positive weight
    or a non-positive queue bound. *)

val validate_all : t list -> unit
(** {!validate} each tenant and reject duplicate names. *)
