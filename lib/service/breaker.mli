(** Per-job-class circuit breaker: closed → open → half-open → closed.

    Fed by the service's failure/timeout and success counters, clocked by
    the service's {e logical} step clock (never wall time, so breaker
    trajectories are deterministic per seed):

    - {b Closed} — jobs admitted.  [failure_threshold] {e consecutive}
      failures trip the breaker open (a success resets the streak).
    - {b Open} — submissions rejected ([Breaker_open]) for
      [cooldown] steps; the class gets breathing room instead of
      hammering a failing dependency.
    - {b Half_open} — after the cooldown, up to [probe_budget] in-flight
      probes are admitted.  Any probe failure reopens (fresh cooldown);
      [probe_budget] successes close the breaker and clear the streak.

    The breaker is driven from the single service driver, so it needs no
    synchronisation. *)

type config = {
  failure_threshold : int;  (** consecutive failures that trip open (>= 1). *)
  cooldown : int;  (** steps the breaker stays open (>= 1). *)
  probe_budget : int;  (** half-open probes required to close (>= 1). *)
}

val default_config : config
(** threshold 5, cooldown 16 steps, 2 probes. *)

type state = Closed | Open | Half_open

val state_name : state -> string
(** "closed" / "open" / "half_open". *)

type t

val create : config -> t

val state : t -> now:int -> state
(** Current state at logical time [now] (an elapsed cooldown reads as
    {!Half_open} even before the first probe is admitted). *)

val admit : t -> now:int -> bool
(** May a job of this class be admitted at time [now]?  In half-open
    state, admission consumes one probe slot. *)

val record_success : t -> now:int -> unit

val record_failure : t -> now:int -> unit

val transitions : t -> (int * state) list
(** Every state change as [(step, new_state)], oldest first — the
    deterministic trajectory the soak report embeds. *)
