(** Per-(tenant, class) circuit breaker: closed → open → half-open → closed.

    Fed by the service's failure/timeout and success counters, clocked by
    the service's {e logical} step clock (never wall time, so breaker
    trajectories are deterministic per seed):

    - {b Closed} — jobs admitted.  [failure_threshold] {e consecutive}
      failures trip the breaker open (a success resets the streak).
    - {b Open} — submissions rejected ([Breaker_open]) for
      [cooldown] steps; the class gets breathing room instead of
      hammering a failing dependency.
    - {b Half_open} — after the cooldown, up to [probe_budget] in-flight
      probes are admitted.  Any probe failure reopens (fresh cooldown);
      [probe_budget] successes close the breaker and clear the streak.

    {b Generations.}  With the non-blocking front door, results arrive
    long after admission: a job admitted while Closed can fail during a
    later Half_open window, and a probe from one Half_open window can
    resolve inside the next.  Each state change bumps a generation
    counter; the service captures {!generation} at admission and passes
    it back to [record_*].  A result whose generation no longer matches
    is {e stale}: it neither consumes the fresh probe budget nor flips
    the state — it is counted in {!stale_results} and dropped.  Every
    [record_*] decision happens under one logical-clock read ([sync]
    then compare), so two concurrent decoupled results cannot both
    debit the single probe budget.

    The breaker is driven from the single service driver, so it needs no
    synchronisation. *)

type config = {
  failure_threshold : int;  (** consecutive failures that trip open (>= 1). *)
  cooldown : int;  (** steps the breaker stays open (>= 1). *)
  probe_budget : int;  (** half-open probes required to close (>= 1). *)
}

val default_config : config
(** threshold 5, cooldown 16 steps, 2 probes. *)

type state = Closed | Open | Half_open

val state_name : state -> string
(** "closed" / "open" / "half_open". *)

type t

val create : config -> t

val state : t -> now:int -> state
(** Current state at logical time [now] (an elapsed cooldown reads as
    {!Half_open} even before the first probe is admitted). *)

val generation : t -> int
(** The current admission window; bumped on every state change.  Read
    it {e after} a successful {!admit} (which may itself complete an
    elapsed cooldown) and hand it back to [record_*] with the result. *)

val admit : t -> now:int -> bool
(** May a job of this class be admitted at time [now]?  In half-open
    state, admission consumes one probe slot. *)

val record_success : ?gen:int -> t -> now:int -> unit
(** Report a success.  When [gen] is given and no longer matches
    {!generation} (after the clock sync), the result is stale: counted
    and otherwise ignored. *)

val record_failure : ?gen:int -> t -> now:int -> unit
(** Report a failure; same staleness rule as {!record_success}. *)

val stale_results : t -> int
(** Results dropped because their admission window had closed. *)

val transitions : t -> (int * state) list
(** Every state change as [(step, new_state)], oldest first — the
    deterministic trajectory the soak report embeds. *)
