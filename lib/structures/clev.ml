(* Chase–Lev work-stealing deque over OCaml 5 atomics.

   Layout: logical indices [top, bottom) name the live elements; a
   circular buffer of Atomic cells stores them at [index land mask].  The
   owner pushes/pops at [bottom]; thieves CAS [top] forward.  OCaml's
   [Atomic] operations are sequentially consistent, which is exactly the
   fence discipline the original algorithm needs: the owner publishes the
   cell write before advancing [bottom] (so a thief that reads
   [bottom > t] also sees the cell), and in [pop] it writes the lowered
   [bottom] before reading [top] (the Dekker-style handshake that makes
   the last-element race fall through to the CAS on [top]).

   Resizing: only the owner grows the buffer, copying the live range into
   a fresh cell array and republishing it through the [buf] atomic.  An
   old buffer is never written again, so a thief that read it before the
   swap still reads the correct value for any index its CAS can win: the
   owner cannot recycle a physical slot for a new logical index without
   first growing (a deque of capacity [c] holds at most [c] elements), and
   a slot's value is only cleared by whoever won the element — whose CAS
   our thief would have lost. *)

type 'a buf = { mask : int; cells : 'a option Atomic.t array }

type 'a t = {
  top : int Atomic.t;  (* next index to steal; only ever increases *)
  bottom : int Atomic.t;  (* next index to push; owner-written only *)
  buf : 'a buf Atomic.t;
}

let mk_buf cap = { mask = cap - 1; cells = Array.init cap (fun _ -> Atomic.make None) }

let cell b i = b.cells.(i land b.mask)

let round_pow2 n =
  let rec go c = if c >= n then c else go (c * 2) in
  go 1

let create ?(min_capacity = 16) () =
  let cap = round_pow2 (max 2 min_capacity) in
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (mk_buf cap) }

let create_at ?min_capacity ~index () =
  let q = create ?min_capacity () in
  Atomic.set q.top index;
  Atomic.set q.bottom index;
  q

(* Owner only: copy [t, b) into a doubled buffer and publish it.  The
   loop walks offsets, not raw indices: near [max_int] the indices wrap
   while [b - t] (wraparound subtraction) stays a small positive count. *)
let grow q b t old =
  let nb = mk_buf (2 * (old.mask + 1)) in
  for off = 0 to b - t - 1 do
    Atomic.set (cell nb (t + off)) (Atomic.get (cell old (t + off)))
  done;
  Schedpoint.point Schedpoint.clev_grow_publish;
  Atomic.set q.buf nb;
  nb

let push q x =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let buf = Atomic.get q.buf in
  let buf = if b - t > buf.mask then grow q b t buf else buf in
  Schedpoint.point Schedpoint.clev_push_cell;
  Atomic.set (cell buf b) (Some x);
  Schedpoint.point Schedpoint.clev_push_publish;
  Atomic.set q.bottom (b + 1)

(* Take the value out of a won cell, clearing it so the deque does not
   retain the element (tasks are closures; holding them leaks). *)
let take c =
  let x = Atomic.get c in
  Atomic.set c None;
  x

(* All index comparisons go through wraparound subtraction ([b - t], a
   small signed distance) rather than [<]/[>=] on the raw indices, so the
   deque stays correct when the monotonically increasing indices overflow
   past [max_int] (exercised by the biased-start tests). *)
let pop q =
  let b = Atomic.get q.bottom - 1 in
  let buf = Atomic.get q.buf in
  Atomic.set q.bottom b;
  Schedpoint.point Schedpoint.clev_pop_reserve;
  (* SC: the [bottom] write above is ordered before this [top] read, so a
     thief that observed the old bottom cannot also observe a top that
     lets both of us take the same element (DESIGN.md §10). *)
  let t = Atomic.get q.top in
  let d = b - t in
  if d < 0 then begin
    (* already empty: undo the reservation *)
    Atomic.set q.bottom t;
    None
  end
  else if d = 0 then begin
    (* single element left: race thieves for it via the top CAS *)
    Schedpoint.point Schedpoint.clev_pop_race;
    let won = Atomic.compare_and_set q.top t (t + 1) in
    Atomic.set q.bottom (t + 1);
    if won then take (cell buf b) else None
  end
  else take (cell buf b)

let steal q =
  let t = Atomic.get q.top in
  Schedpoint.point Schedpoint.clev_steal_read;
  let b = Atomic.get q.bottom in
  if b - t <= 0 then None
  else begin
    let buf = Atomic.get q.buf in
    (* read the candidate before the CAS: once the CAS wins, the owner may
       recycle the slot, but then it is ours and nobody rewrites what we
       read (a rewrite requires winning index [t], i.e. our CAS failing) *)
    let x = Atomic.get (cell buf t) in
    Schedpoint.point Schedpoint.clev_steal_cell;
    if Atomic.compare_and_set q.top t (t + 1) then x else None
  end

let length q = max 0 (Atomic.get q.bottom - Atomic.get q.top)

let is_empty q = length q = 0

let capacity q = (Atomic.get q.buf).mask + 1
