(** Relaxed MultiQueue priority structure for the DFDeques R-list.

    The paper keeps the deques of DFDeques in one globally ordered list R
    and steals from the leftmost-p window.  Maintaining that list exactly
    under contention forces a global serialization point (the pool's old
    [r_lock] + republished leftmost-p snapshot).  This module trades exact
    order for scalability the way relaxed priority schedulers do
    ("Multi-Queues Can Be State-of-the-Art Priority Schedulers", PAPERS.md):

    - membership lives in [c*p] {e shards}, each an immutable sorted array
      republished by CAS — insert, remove and the implied ownership
      transfer are lock-free (a failed CAS means another thread made
      progress);
    - victim selection is {e two-choice sampling}: read the heads of two
      sampled shards (two atomic loads) and take the more-leftmost — no
      global snapshot, no lock;
    - order between entries is decided by O(1) integer labels in the
      style of {!Order_maint}: each entry owns a tag and a CAS-managed
      right-gap allocator, so "insert immediately after" splits the
      anchor's gap with one [compare_and_set] instead of relabelling
      under a lock.  When a gap is exhausted the new entry ties with its
      anchor (broken deterministically by insertion sequence) — a bounded
      order relaxation instead of a stop-the-world relabel.

    What is given up is exactness of the leftmost-p window: a sampled
    victim is the minimum of the two inspected shards, not of all of R.
    The resulting {e rank error} (how many live entries are strictly more
    leftmost than the victim) is the quantity the pool instruments per
    steal; {!rank} computes it.  What is {e not} given up: an entry is
    removed at most once ({!remove} has exactly-one-winner CAS
    semantics), a sampled entry was live when sampled, and entries never
    reorder after insertion.

    All operations are safe from any domain.  OCaml [Atomic] operations
    are sequentially consistent, which is stronger than this structure
    needs (see DESIGN.md §15 for the memory-ordering audit). *)

type 'a t

type 'a entry
(** A member handle: immutable order label + liveness flag.  The handle
    returned by insertion is the only way to remove the member. *)

val create : ?shards:int -> unit -> 'a t
(** [shards] (default 8, min 1) fixes the shard count; the pool uses
    [2 * p]. *)

val shard_count : 'a t -> int

val size : 'a t -> int
(** Live members (atomic counter; exact). *)

val value : 'a entry -> 'a

val is_live : 'a entry -> bool
(** False once {!remove} has won on this entry. *)

val shard_of : 'a entry -> int
(** Which shard holds the entry (round-robin placement at insert). *)

val tag : 'a entry -> int
(** The entry's order label (tests and diagnostics). *)

val compare_entries : 'a entry -> 'a entry -> int
(** The relaxed total order: tags ascending (smaller = more leftmost);
    equal tags — possible only after gap exhaustion — break by insertion
    sequence, the later insertion sitting more leftmost (it was inserted
    closer to the shared anchor).  O(1), never raises, valid on dead
    entries. *)

val insert_front : ?ops:int ref -> 'a t -> 'a -> 'a entry
(** New leftmost-region member: its label is allocated a fixed stride to
    the left of every previous front insertion.  [ops] accumulates the
    atomic RMW count of the operation, CAS retries included (the
    sync-op metric; see {!Lfdeque}). *)

val insert_after : ?ops:int ref -> 'a t -> 'a entry -> 'a -> 'a entry
(** New member immediately to the right of [anchor] (the DFDeques thief
    invariant): splits the anchor's right gap by CAS.  Inserting after a
    dead anchor is allowed and takes the anchor's old position. *)

val remove : ?ops:int ref -> 'a t -> 'a entry -> bool
(** Exactly-one-winner removal: [true] for the single caller that flips
    the entry dead (and unpublishes it from its shard), [false] for every
    other and for repeated calls. *)

val sample : 'a t -> int -> int -> 'a entry option
(** [sample t i j] — two-choice victim draw: the more-leftmost of the
    heads of shards [i] and [j] (indices taken mod the shard count), or
    [None] if both are empty.  The returned entry was live when read;
    it may die concurrently afterwards (the caller observes an empty
    deque and treats it as a failed steal). *)

val head : 'a t -> int -> 'a entry option
(** Leftmost live member of one shard. *)

val rank : 'a t -> 'a entry -> int
(** Number of live members strictly more leftmost than the entry — the
    entry's 0-based position in the relaxed global order.  O(|R|) scan
    over the shard arrays (lock-free, approximate under concurrent
    churn); observability, not a hot-path primitive. *)

val members : 'a t -> 'a entry list
(** All live entries, sorted by {!compare_entries}.  Lock-free snapshot;
    approximate while membership churns. *)

val members_of_shard : 'a t -> int -> 'a entry list
(** Live entries of one shard, sorted (tests and diagnostics). *)

val to_list : 'a t -> 'a list
(** [members] projected to values. *)
