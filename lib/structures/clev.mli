(** A dynamically-resizing Chase–Lev work-stealing deque.

    One distinguished {e owner} thread calls {!push} and {!pop} on the
    bottom end with no lock and no CAS except for the single-element race;
    any number of {e thief} threads call {!steal} on the top end, each
    successful steal arbitrated by one compare-and-set on the [top] index.
    This is the lock-free discipline of Chase & Lev, "Dynamic circular
    work-stealing deque" (SPAA 2005), itself the modern form of Blumofe &
    Leiserson's THE protocol.

    The buffer is a circular array of [Atomic] cells, republished through
    an atomic pointer when the owner grows it, so steals that raced a
    resize read a frozen (never-mutated-again) old buffer and remain
    correct.  All indices and cells use OCaml [Atomic] operations, which
    are sequentially consistent — the ordering argument for the
    [pop]/[steal] race on the last element is spelled out in DESIGN.md
    §10.

    Correctness contract: exactly one thread may call {!push}/{!pop};
    {!steal}, {!length} and {!is_empty} are safe from any thread. *)

type 'a t

val create : ?min_capacity:int -> unit -> 'a t
(** [create ()] makes an empty deque.  [min_capacity] (default 16,
    rounded up to a power of two) sizes the initial buffer; small values
    are useful in tests to exercise resizing. *)

val create_at : ?min_capacity:int -> index:int -> unit -> 'a t
(** Like {!create} but with [top = bottom = index].  Tests only: a start
    index near [max_int] exercises the wraparound of the monotonically
    increasing logical indices (all internal comparisons use wraparound
    subtraction, so overflow is safe). *)

val push : 'a t -> 'a -> unit
(** Owner only.  Push onto the bottom (LIFO) end, growing the buffer if
    full.  Never blocks, never fails. *)

val pop : 'a t -> 'a option
(** Owner only.  Pop the most recently pushed element, or [None] if the
    deque is empty.  When exactly one element remains the owner races
    thieves for it with a CAS on [top]; losing the race returns [None]. *)

val steal : 'a t -> 'a option
(** Any thread.  Take the oldest element (the top end — the shallowest
    task under fork-join nesting), or [None] if the deque looks empty or
    the CAS lost to a concurrent thief/owner.  A [None] does not mean the
    deque is empty — retry with backoff. *)

val length : 'a t -> int
(** Racy size estimate ([bottom - top] read non-atomically as a pair);
    exact when no operation is concurrent.  Diagnostics only. *)

val is_empty : 'a t -> bool
(** [length t = 0] — same caveat as {!length}. *)

val capacity : 'a t -> int
(** Current buffer capacity (racy; diagnostics and tests). *)
