(** Injectable yield points for the systematic concurrency checker.

    Concurrency-sensitive code calls {!point} at the instants where an
    adversarial scheduler could preempt it: between the individual atomic
    operations of the Chase–Lev deque, at the native pool's task-transfer
    boundaries.  With no handler installed (production, and every test
    that is not a checker run) a point costs one atomic load and does
    nothing — the hook is a no-op unless checking is enabled.

    The checker ({!module:Dfd_check.Explore}) installs a process-global
    handler around an exploration run.  The handler receives the point id
    and is responsible for deciding whether the calling thread is under
    its control (threads it did not spawn must pass through unimpeded). *)

val point : int -> unit
(** [point id] — yield to the installed handler, if any. *)

val install : (int -> unit) -> unit
(** Install the process-global handler (checker only; not reentrant). *)

val uninstall : unit -> unit

val active : unit -> bool
(** Whether a handler is currently installed. *)

(** {2 Yield-point ids}

    Stable identifiers for every instrumented site, so replay files are
    readable and survive refactors that do not move the sites. *)

val start : int
(** Pseudo-point at which every controlled thread blocks before running. *)

val clev_push_cell : int
val clev_push_publish : int
val clev_pop_reserve : int
val clev_pop_race : int
val clev_steal_read : int
val clev_steal_cell : int
val clev_grow_publish : int
val pool_push : int
val pool_get : int
val pool_pop_exact : int
val pool_await : int
val pool_fulfill : int

val clev_steal_commit : int
(** Only emitted by the checker's deliberately buggy deque variant: the
    instant between its (non-atomic) top check and top store, where the
    correct deque has a single CAS and hence no such point. *)

val multiq_insert : int
(** Inside a multiq shard-publish or gap-split CAS retry window. *)

val multiq_remove : int
(** Inside a multiq shard-unpublish CAS retry window. *)

val multiq_sample : int
(** Before a two-choice sample reads its two shard heads. *)

val multiq_remove_commit : int
(** Only emitted by the checker's deliberately buggy multiq variant: the
    instant between its shard read and its (non-CAS) republish on remove,
    where the correct structure has a compare_and_set and hence no such
    window. *)

val lfdeque_push_cell : int
(** Lfdeque push: after the bottom read, before the cell write. *)

val lfdeque_push_publish : int
(** Lfdeque push: between the cell write and the bottom publish. *)

val lfdeque_pop_reserve : int
(** Lfdeque pop: between the bottom decrement and the top read. *)

val lfdeque_pop_race : int
(** Lfdeque pop: before the last-element CAS against a thief. *)

val lfdeque_steal_read : int
(** Lfdeque steal: between the top read and the bottom read. *)

val lfdeque_steal_cell : int
(** Lfdeque steal: between the cell read and the top CAS. *)

val lfdeque_grow_publish : int
(** Lfdeque grow: between building the new buffer and republishing. *)

val lfdeque_abandon : int
(** Lfdeque abandon: before the sticky owner-to-[None] store — the
    ownership-transfer window a concurrent thief races. *)

val lfdeque_reap : int
(** Lfdeque [is_dead]: between the owner read and the emptiness read —
    the reap-decision window a concurrent steal races. *)

val lfdeque_steal_commit : int
(** Only emitted by the checker's deliberately buggy lfdeque variant: the
    instant between its non-atomic top check and top store, where the
    correct deque has a single CAS and hence no such window. *)

val pool_crash_flag : int
(** Pool crash path: between publishing the held task and raising the
    worker's own death certificate — the window a quarantining peer
    races. *)

val pool_quarantine : int
(** Pool quarantine: after winning the one-winner quarantine CAS, before
    fencing the victim and recovering its held task. *)

val pool_orphan_push : int
(** Pool orphan requeue: inside the Treiber-stack push CAS window. *)

val pool_orphan_pop : int
(** Pool orphan take: inside the Treiber-stack pop CAS window. *)

val name : int -> string
(** Human-readable name of a point id. *)

val of_name : string -> int option
