(* Single-word-CAS lock-free deque specialized for the DFDeques
   discipline (after Sundell & Tsigas's CAS-only deques and Chase–Lev's
   owner/thief split; see DESIGN.md §16).

   The pool's DFDeques paths need three things beyond a plain
   work-stealing deque, and this module builds them in so the pool can
   drop its per-deque mutex entirely:

   - owner push/pop at the bottom end and thief steals at the top end,
     all arbitrated by single-word CAS (the only blocking left in the
     discipline is the scheduler's own idle parking);
   - a sticky ownership certificate: [abandon] publishes the quota
     give-up by storing [None] into the atomic [owner] field, exactly
     once — a deque is never re-owned, so after abandonment no push can
     ever occur and the element count only shrinks;
   - the death certificate [is_dead]: [owner = None && is_empty],
     readable without any lock.  Because abandonment is sticky and
     pushes are owner-only, emptiness observed *after* reading
     [owner = None] is stable, so "dead" is a one-way state and a reaper
     that sees it can remove the deque from R knowing no task can ever
     be stranded inside it.

   Layout is Chase–Lev: logical indices [top, bottom) name the live
   elements in a circular buffer of Atomic cells; the owner pushes/pops
   at [bottom], thieves CAS [top] forward.  OCaml [Atomic] is
   sequentially consistent, which supplies both fences the algorithm
   needs (publication: cell write before bottom publish; the Dekker
   handshake: pop writes the lowered bottom before reading top).  All
   index comparisons go through wraparound subtraction so the
   monotonically increasing indices survive crossing max_int (the
   [create_at] biased-start tests drive this).

   Every operation threads [Schedpoint] yield points through its CAS
   windows so the lib/check explorer can interleave owner, thief and
   reaper adversarially; in production each point is one atomic load.

   Synchronization-op accounting: each mutating operation optionally
   bumps an [ops] cell by the number of atomic RMW/store operations it
   actually executed (CAS attempts included, plain loads excluded) — the
   fork/join sync-op metric of Rito & Paulino that the pool aggregates
   per worker into [Pool.sync_ops]. *)

module Schedpoint = Schedpoint

type 'a buf = { mask : int; cells : 'a option Atomic.t array }

type 'a t = {
  top : int Atomic.t;  (* next index to steal; only ever increases *)
  bottom : int Atomic.t;  (* next index to push; owner-written only *)
  buf : 'a buf Atomic.t;
  owner : int option Atomic.t;  (* Some w -> None, once, never back *)
}

let mk_buf cap = { mask = cap - 1; cells = Array.init cap (fun _ -> Atomic.make None) }

let cell b i = b.cells.(i land b.mask)

let round_pow2 n =
  let rec go c = if c >= n then c else go (c * 2) in
  go 1

let create ?(min_capacity = 16) ?owner () =
  let cap = round_pow2 (max 2 min_capacity) in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (mk_buf cap);
    owner = Atomic.make owner;
  }

(* Biased-start constructor: the logical indices begin at [index] so the
   wraparound discipline can be exercised right at the max_int boundary
   without pushing 2^62 elements first. *)
let create_at ?min_capacity ?owner ~index () =
  let q = create ?min_capacity ?owner () in
  Atomic.set q.top index;
  Atomic.set q.bottom index;
  q

let bump ops n = match ops with None -> () | Some r -> r := !r + n

(* ------------------------------------------------------------------ *)
(* Ownership lifecycle                                                 *)
(* ------------------------------------------------------------------ *)

let owner q = Atomic.get q.owner

(* Sticky: the one-way Some -> None store that publishes a quota
   give-up.  Only the owner calls this (its own thread), so a plain
   store suffices — there is no competing writer; the atomicity matters
   for the readers racing it. *)
let abandon ?ops q =
  Schedpoint.point Schedpoint.lfdeque_abandon;
  Atomic.set q.owner None;
  bump ops 1

(* Death certificate.  Order matters: read [owner] first, then
   emptiness.  Once [owner = None] is observed, no push can follow (the
   abandoning owner forgot its handle before the store became visible,
   and a deque is never re-owned), so the element count is monotonically
   shrinking and "empty" observed afterwards is stable forever. *)
let is_dead q =
  let unowned = Atomic.get q.owner = None in
  Schedpoint.point Schedpoint.lfdeque_reap;
  unowned && Atomic.get q.bottom - Atomic.get q.top <= 0

(* ------------------------------------------------------------------ *)
(* Owner operations (bottom end)                                       *)
(* ------------------------------------------------------------------ *)

(* Owner only: copy [t, b) into a doubled buffer and publish it.  Old
   buffers are never written again, so a thief holding a pre-resize
   buffer still reads the correct value for any index whose CAS it can
   win. *)
let grow ops q b t old =
  let nb = mk_buf (2 * (old.mask + 1)) in
  for off = 0 to b - t - 1 do
    Atomic.set (cell nb (t + off)) (Atomic.get (cell old (t + off)))
  done;
  Schedpoint.point Schedpoint.lfdeque_grow_publish;
  Atomic.set q.buf nb;
  bump ops 1;
  nb

let push ?ops q x =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let buf = Atomic.get q.buf in
  let buf = if b - t > buf.mask then grow ops q b t buf else buf in
  Schedpoint.point Schedpoint.lfdeque_push_cell;
  Atomic.set (cell buf b) (Some x);
  Schedpoint.point Schedpoint.lfdeque_push_publish;
  Atomic.set q.bottom (b + 1);
  bump ops 2

(* Take the value out of a won cell, clearing it so the deque does not
   retain the element (tasks are closures; holding them leaks). *)
let take c =
  let x = Atomic.get c in
  Atomic.set c None;
  x

let pop ?ops q =
  let b = Atomic.get q.bottom - 1 in
  let buf = Atomic.get q.buf in
  Atomic.set q.bottom b;
  bump ops 1;
  Schedpoint.point Schedpoint.lfdeque_pop_reserve;
  (* SC: the [bottom] write above is ordered before this [top] read — the
     Dekker handshake that funnels the last-element race into the CAS *)
  let t = Atomic.get q.top in
  let d = b - t in
  if d < 0 then begin
    (* already empty: undo the reservation *)
    Atomic.set q.bottom t;
    bump ops 1;
    None
  end
  else if d = 0 then begin
    (* single element left: race thieves for it via the top CAS *)
    Schedpoint.point Schedpoint.lfdeque_pop_race;
    let won = Atomic.compare_and_set q.top t (t + 1) in
    Atomic.set q.bottom (t + 1);
    bump ops 2;
    if won then begin
      bump ops 1;
      take (cell buf b)
    end
    else None
  end
  else begin
    bump ops 1;
    take (cell buf b)
  end

(* ------------------------------------------------------------------ *)
(* Thief operation (top end)                                           *)
(* ------------------------------------------------------------------ *)

let steal ?ops q =
  let t = Atomic.get q.top in
  Schedpoint.point Schedpoint.lfdeque_steal_read;
  let b = Atomic.get q.bottom in
  if b - t <= 0 then None
  else begin
    let buf = Atomic.get q.buf in
    (* read the candidate before the CAS: once the CAS wins the slot is
       ours, and nobody rewrites what we read (a rewrite requires
       winning index [t], i.e. our CAS failing) *)
    let x = Atomic.get (cell buf t) in
    Schedpoint.point Schedpoint.lfdeque_steal_cell;
    bump ops 1;
    if Atomic.compare_and_set q.top t (t + 1) then begin
      bump ops 1;
      x
    end
    else None
  end

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)
(* ------------------------------------------------------------------ *)

let length q = max 0 (Atomic.get q.bottom - Atomic.get q.top)

let is_empty q = length q = 0

let capacity q = (Atomic.get q.buf).mask + 1
