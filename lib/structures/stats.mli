(** Small running-statistics helpers shared by the metrics module and the
    experiment harness: watermark counters, running means, and fixed-width
    text tables for the figure/table reproductions. *)

(** A counter that tracks its high watermark (used for live heap bytes,
    live thread counts, deque counts, ...). *)
module Watermark : sig
  type t

  val create : unit -> t

  val add : t -> int -> unit
  (** Add a (possibly negative) delta to the current value. *)

  val current : t -> int

  val peak : t -> int
  (** Highest value ever reached. *)
end

(** Accumulates observations; reports count/mean/min/max/variance/total.

    The [_opt] accessors make the empty state explicit; the plain float
    accessors keep their historical sentinels ([mean] and [variance] are
    [0.0], [max_value] is [neg_infinity] and [min_value] is [infinity] on
    an empty accumulator) and must only be used where the caller has
    already established [count t > 0]. *)
module Acc : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit

  val count : t -> int

  val is_empty : t -> bool

  val total : t -> float

  val mean_opt : t -> float option

  val min_opt : t -> float option

  val max_opt : t -> float option

  val variance_opt : t -> float option
  (** Population variance. *)

  val mean : t -> float
  (** 0 when empty; prefer {!mean_opt} unless emptiness is excluded. *)

  val max_value : t -> float
  (** neg_infinity when empty; prefer {!max_opt}. *)

  val min_value : t -> float
  (** infinity when empty; prefer {!min_opt}. *)

  val variance : t -> float
  (** 0 when empty; prefer {!variance_opt}. *)
end

(** A fixed-size log-bucketed histogram of non-negative observations
    (negative values clamp to 0).

    Bucket 0 holds values in [0, 1); bucket [i >= 1] holds [[2^(i-1),
    2^i)].  Quantiles are answered from the bucket counts (exact bucket,
    geometric-midpoint representative clamped to the observed min/max), so
    a quantile is accurate to within a factor of 2 while the histogram
    costs O(1) memory regardless of how many observations it absorbs —
    cheap enough to leave on in the scheduler hot path.

    Used for the paper-motivated distributions: steal latency, deque
    residency in R, quota utilisation between steals. *)
module Histogram : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit

  val count : t -> int

  val is_empty : t -> bool

  val total : t -> float

  val mean_opt : t -> float option

  val min_opt : t -> float option

  val max_opt : t -> float option

  val quantile : t -> float -> float option
  (** [quantile t q] for [q] in [0, 1] (clamped); [None] when empty.
      Monotone in [q]: [q <= q'] implies [quantile q <= quantile q']. *)

  val merge : t -> t -> t
  (** A fresh histogram holding both inputs' observations (associative and
      commutative up to {!equal}). *)

  val buckets : t -> (float * int) list
  (** Non-empty buckets as [(upper_bound, count)], increasing bounds. *)

  val equal : t -> t -> bool
  (** Same count, bucket counts and extrema; totals equal up to float
      rounding (so {!merge} is associative and commutative up to
      [equal]). *)
end

(** Plain-text table rendering used by every experiment to print the
    paper-shaped tables. *)
module Table : sig
  val render : header:string list -> rows:string list list -> string
  (** Columns are sized to the widest cell; first row is underlined. *)
end

val fmt_float : float -> string
(** Compact float formatting for table cells (3 significant decimals). *)

val fmt_bytes : int -> string
(** Human bytes: "512B", "50.0kB", "2.3MB". *)
