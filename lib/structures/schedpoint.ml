(* Injectable yield points for the systematic concurrency checker.

   Concurrency-sensitive code (the Chase–Lev deque, the native pool's hot
   paths) calls [point id] at the instants where an adversarial scheduler
   could preempt it.  In production no handler is installed and a point is
   a single sequentially-consistent load of [None] — no allocation, no
   branch beyond the match.  The checker (lib/check) installs a handler
   for the duration of an exploration run; the handler itself decides
   whether the calling thread is one of the controlled threads (via
   domain-local state) and blocks it until the explorer schedules it. *)

let handler : (int -> unit) option Atomic.t = Atomic.make None

let install f = Atomic.set handler (Some f)

let uninstall () = Atomic.set handler None

let active () = Atomic.get handler <> None

let point id = match Atomic.get handler with None -> () | Some f -> f id

(* Yield-point ids.  Stable small ints so replay files stay readable and
   diffable; [name] renders them for traces. *)

let start = 0

let clev_push_cell = 1

let clev_push_publish = 2

let clev_pop_reserve = 3

let clev_pop_race = 4

let clev_steal_read = 5

let clev_steal_cell = 6

let clev_grow_publish = 7

let pool_push = 8

let pool_get = 9

let pool_pop_exact = 10

let pool_await = 11

let pool_fulfill = 12

let clev_steal_commit = 13

let multiq_insert = 14

let multiq_remove = 15

let multiq_sample = 16

let multiq_remove_commit = 17

let lfdeque_push_cell = 18

let lfdeque_push_publish = 19

let lfdeque_pop_reserve = 20

let lfdeque_pop_race = 21

let lfdeque_steal_read = 22

let lfdeque_steal_cell = 23

let lfdeque_grow_publish = 24

let lfdeque_abandon = 25

let lfdeque_reap = 26

let lfdeque_steal_commit = 27

let pool_crash_flag = 28

let pool_quarantine = 29

let pool_orphan_push = 30

let pool_orphan_pop = 31

let names =
  [|
    "start";
    "clev_push_cell";
    "clev_push_publish";
    "clev_pop_reserve";
    "clev_pop_race";
    "clev_steal_read";
    "clev_steal_cell";
    "clev_grow_publish";
    "pool_push";
    "pool_get";
    "pool_pop_exact";
    "pool_await";
    "pool_fulfill";
    "clev_steal_commit";
    "multiq_insert";
    "multiq_remove";
    "multiq_sample";
    "multiq_remove_commit";
    "lfdeque_push_cell";
    "lfdeque_push_publish";
    "lfdeque_pop_reserve";
    "lfdeque_pop_race";
    "lfdeque_steal_read";
    "lfdeque_steal_cell";
    "lfdeque_grow_publish";
    "lfdeque_abandon";
    "lfdeque_reap";
    "lfdeque_steal_commit";
    "pool_crash_flag";
    "pool_quarantine";
    "pool_orphan_push";
    "pool_orphan_pop";
  |]

let name id = if id >= 0 && id < Array.length names then names.(id) else Printf.sprintf "p%d" id

let of_name s =
  let found = ref None in
  Array.iteri (fun i n -> if n = s then found := Some i) names;
  !found
