(* Relaxed MultiQueue R-list: c·p sharded sorted arrays republished by
   CAS, two-choice victim sampling, and lock-free order labels in the
   style of Order_maint (tag midpoints; CAS gap-splitting instead of
   relabelling).  See the .mli and DESIGN.md §15 for the design and the
   memory-ordering audit.

   Schedpoint.multiq_insert/remove/sample yield points mark the CAS
   retry windows so the
   schedule explorer can interleave membership operations adversarially;
   in production each point is one atomic load. *)

(* Tag space mirrors Order_maint: front insertions march left from the
   middle of a 60-bit space in [front_stride] steps, and each entry owns
   the half-open gap (tag, bound) for its insert-after children.  2^30
   between consecutive front entries allows 30 nested gap splits before
   children start tying with their anchor (ties are bounded rank error,
   not failures); front tags may go negative after 2^29 front
   insertions, which still orders correctly. *)
let max_tag = 1 lsl 60

let front_stride = 1 lsl 30

type 'a entry = {
  e_tag : int;
  e_bound : int Atomic.t;  (** right edge of this entry's child gap. *)
  e_seq : int;  (** unique insertion sequence number; tie-break. *)
  e_shard : int;
  e_value : 'a;
  e_live : bool Atomic.t;
}

type 'a t = {
  shards : 'a entry array Atomic.t array;
  n_shards : int;
  next_front : int Atomic.t;  (** tag of the next front insertion. *)
  next_seq : int Atomic.t;
  next_shard : int Atomic.t;  (** round-robin placement cursor. *)
  population : int Atomic.t;
}

let create ?(shards = 8) () =
  let n = max 1 shards in
  {
    shards = Array.init n (fun _ -> Atomic.make [||]);
    n_shards = n;
    next_front = Atomic.make (max_tag / 2);
    next_seq = Atomic.make 0;
    next_shard = Atomic.make 0;
    population = Atomic.make 0;
  }

let shard_count t = t.n_shards

let size t = Atomic.get t.population

let value e = e.e_value

let is_live e = Atomic.get e.e_live

let shard_of e = e.e_shard

let tag e = e.e_tag

(* Tags ascending; on a tie the later insertion (larger seq) is more
   leftmost — it was inserted closer to the shared anchor, matching the
   DFDeques "thief sits immediately right of its victim" rule. *)
let compare_entries a b =
  if a.e_tag <> b.e_tag then compare a.e_tag b.e_tag else compare b.e_seq a.e_seq

(* ------------------------------------------------------------------ *)
(* Shard publication (CAS retry loops over immutable sorted arrays)     *)
(* ------------------------------------------------------------------ *)

let insert_sorted arr e =
  let n = Array.length arr in
  let out = Array.make (n + 1) e in
  let rec place i =
    if i < n && compare_entries arr.(i) e < 0 then begin
      out.(i) <- arr.(i);
      place (i + 1)
    end
    else
      for j = i to n - 1 do
        out.(j + 1) <- arr.(j)
      done
  in
  place 0;
  out

let without arr e =
  if Array.exists (fun x -> x == e) arr then
    Some (Array.of_list (List.filter (fun x -> x != e) (Array.to_list arr)))
  else None

(* Sync-op accounting: every atomic RMW (CAS attempts included, failed
   or not) and counter bump on the mutating paths charges the caller's
   optional [ops] cell — the pool aggregates these per worker into
   [Pool.sync_ops].  Plain atomic loads are not counted. *)
let bump ops n = match ops with None -> () | Some r -> r := !r + n

let rec publish ops t e =
  let cell = t.shards.(e.e_shard) in
  let arr = Atomic.get cell in
  Schedpoint.point Schedpoint.multiq_insert;
  bump ops 1;
  if not (Atomic.compare_and_set cell arr (insert_sorted arr e)) then publish ops t e

let rec unpublish ops t e =
  let cell = t.shards.(e.e_shard) in
  let arr = Atomic.get cell in
  Schedpoint.point Schedpoint.multiq_remove;
  match without arr e with
  | None -> ()  (* already physically gone *)
  | Some arr' ->
    bump ops 1;
    if not (Atomic.compare_and_set cell arr arr') then unpublish ops t e

(* ------------------------------------------------------------------ *)
(* Membership                                                          *)
(* ------------------------------------------------------------------ *)

let fresh t ~tag ~bound v =
  {
    e_tag = tag;
    e_bound = Atomic.make bound;
    e_seq = Atomic.fetch_and_add t.next_seq 1;
    e_shard = Atomic.fetch_and_add t.next_shard 1 mod t.n_shards;
    e_value = v;
    e_live = Atomic.make true;
  }

let insert ops t e =
  publish ops t e;
  Atomic.incr t.population;
  bump ops 1;
  e

let insert_front ?ops t v =
  let tag = Atomic.fetch_and_add t.next_front (-front_stride) in
  bump ops 3;  (* next_front + the two allocator RMWs in [fresh] *)
  insert ops t (fresh t ~tag ~bound:(tag + front_stride) v)

(* Split the anchor's right gap: the child takes the midpoint and
   inherits the upper half as its own child gap, so repeated splits
   nest exactly (each later child lands closer to the anchor — more
   leftmost — than its elder siblings).  Gap exhausted: tie with the
   anchor, broken by seq in [compare_entries]. *)
let rec alloc_after ops anchor =
  let b = Atomic.get anchor.e_bound in
  let gap = b - anchor.e_tag in
  if gap < 2 then (anchor.e_tag, b)
  else begin
    let mid = anchor.e_tag + (gap / 2) in
    Schedpoint.point Schedpoint.multiq_insert;
    bump ops 1;
    if Atomic.compare_and_set anchor.e_bound b mid then (mid, b) else alloc_after ops anchor
  end

let insert_after ?ops t anchor v =
  let tag, bound = alloc_after ops anchor in
  bump ops 2;  (* the two allocator RMWs in [fresh] *)
  insert ops t (fresh t ~tag ~bound v)

let remove ?ops t e =
  bump ops 1;
  if Atomic.compare_and_set e.e_live true false then begin
    Atomic.decr t.population;
    bump ops 1;
    unpublish ops t e;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Sampling and observation                                            *)
(* ------------------------------------------------------------------ *)

(* First live entry of the shard's current array.  Entries awaiting
   physical removal (dead but still published) are skipped. *)
let head_of arr =
  let n = Array.length arr in
  let rec go i = if i >= n then None else if is_live arr.(i) then Some arr.(i) else go (i + 1) in
  go 0

let head t k = head_of (Atomic.get t.shards.(k mod t.n_shards))

let sample t i j =
  Schedpoint.point Schedpoint.multiq_sample;
  match (head t i, head t j) with
  | None, h | h, None -> h
  | Some a, Some b -> Some (if compare_entries a b <= 0 then a else b)

let fold_live t f acc =
  Array.fold_left
    (fun acc cell ->
       Array.fold_left (fun acc e -> if is_live e then f acc e else acc) acc (Atomic.get cell))
    acc t.shards

let rank t e = fold_live t (fun n m -> if compare_entries m e < 0 then n + 1 else n) 0

let members t = List.sort compare_entries (fold_live t (fun acc e -> e :: acc) [])

let members_of_shard t k =
  List.filter is_live (Array.to_list (Atomic.get t.shards.(k mod t.n_shards)))

let to_list t = List.map value (members t)
