module Watermark = struct
  type t = { mutable cur : int; mutable hi : int }

  let create () = { cur = 0; hi = 0 }

  let add t d =
    t.cur <- t.cur + d;
    if t.cur > t.hi then t.hi <- t.cur

  let current t = t.cur

  let peak t = t.hi
end

module Acc = struct
  type t = {
    mutable n : int;
    mutable sum : float;
    mutable sumsq : float;
    mutable mn : float;
    mutable mx : float;
  }

  let create () = { n = 0; sum = 0.0; sumsq = 0.0; mn = infinity; mx = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    t.sumsq <- t.sumsq +. (x *. x);
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x

  let count t = t.n

  let is_empty t = t.n = 0

  let total t = t.sum

  let mean_opt t = if t.n = 0 then None else Some (t.sum /. float_of_int t.n)

  let max_opt t = if t.n = 0 then None else Some t.mx

  let min_opt t = if t.n = 0 then None else Some t.mn

  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

  let max_value t = t.mx

  let min_value t = t.mn

  let variance_opt t =
    if t.n = 0 then None
    else begin
      let m = t.sum /. float_of_int t.n in
      (* population variance; clamp the tiny negatives of catastrophic
         cancellation *)
      Some (Float.max 0.0 ((t.sumsq /. float_of_int t.n) -. (m *. m)))
    end

  let variance t = match variance_opt t with Some v -> v | None -> 0.0
end

module Histogram = struct
  (* Power-of-two buckets: bucket 0 holds values < 1 (including everything
     non-positive), bucket i >= 1 holds [2^(i-1), 2^i).  63 buckets cover
     the whole non-negative int range, so [add] never overflows. *)
  let n_buckets = 64

  type t = {
    mutable n : int;
    mutable sum : float;
    mutable mn : float;
    mutable mx : float;
    buckets : int array;
  }

  let create () =
    { n = 0; sum = 0.0; mn = infinity; mx = neg_infinity; buckets = Array.make n_buckets 0 }

  let bucket_of x =
    if x < 1.0 then 0
    else begin
      (* frexp is exact: x = m * 2^e with m in [0.5, 1), so 2^(e-1) <= x <
         2^e and the bucket index is e. *)
      let _, e = Float.frexp x in
      min e (n_buckets - 1)
    end

  let bucket_upper i = if i = 0 then 1.0 else Float.ldexp 1.0 i

  let bucket_lower i = if i = 0 then 0.0 else Float.ldexp 1.0 (i - 1)

  let add t x =
    let x = Float.max 0.0 x in
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x;
    let b = bucket_of x in
    t.buckets.(b) <- t.buckets.(b) + 1

  let count t = t.n

  let is_empty t = t.n = 0

  let total t = t.sum

  let mean_opt t = if t.n = 0 then None else Some (t.sum /. float_of_int t.n)

  let min_opt t = if t.n = 0 then None else Some t.mn

  let max_opt t = if t.n = 0 then None else Some t.mx

  let quantile t q =
    if t.n = 0 then None
    else begin
      let q = Float.min 1.0 (Float.max 0.0 q) in
      let rank = Float.max 1.0 (Float.round (q *. float_of_int t.n)) in
      let rank = int_of_float rank in
      let i = ref 0 in
      let cum = ref t.buckets.(0) in
      while !cum < rank do
        incr i;
        cum := !cum + t.buckets.(!i)
      done;
      (* representative value: the geometric middle of the bucket, clamped
         to the observed range (exact for the extreme buckets) *)
      let lo = bucket_lower !i and hi = bucket_upper !i in
      let rep = if !i = 0 then lo else sqrt (lo *. hi) in
      Some (Float.min t.mx (Float.max t.mn rep))
    end

  let merge a b =
    let t = create () in
    t.n <- a.n + b.n;
    t.sum <- a.sum +. b.sum;
    t.mn <- Float.min a.mn b.mn;
    t.mx <- Float.max a.mx b.mx;
    Array.iteri (fun i v -> t.buckets.(i) <- v + b.buckets.(i)) a.buckets;
    t

  let buckets t =
    let acc = ref [] in
    for i = n_buckets - 1 downto 0 do
      if t.buckets.(i) > 0 then acc := (bucket_upper i, t.buckets.(i)) :: !acc
    done;
    !acc

  (* Counts, buckets and extrema are exact; [sum] is compared up to float
     rounding so that merge is associative up to [equal]. *)
  let equal a b =
    a.n = b.n
    && (a.n = 0 || (a.mn = b.mn && a.mx = b.mx))
    && a.buckets = b.buckets
    && Float.abs (a.sum -. b.sum)
       <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a.sum) (Float.abs b.sum))
end

module Table = struct
  let render ~header ~rows =
    let all = header :: rows in
    let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
    let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
    let all = List.map pad all in
    let widths = Array.make ncols 0 in
    List.iter
      (fun row ->
         List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
      all;
    let buf = Buffer.create 256 in
    let emit row =
      List.iteri
        (fun i cell ->
           Buffer.add_string buf cell;
           if i < ncols - 1 then
             Buffer.add_string buf (String.make (widths.(i) - String.length cell + 2) ' '))
        row;
      Buffer.add_char buf '\n'
    in
    (match all with
     | hd :: tl ->
       emit hd;
       let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
       Buffer.add_string buf (String.make total '-');
       Buffer.add_char buf '\n';
       List.iter emit tl
     | [] -> ());
    Buffer.contents buf
end

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e9 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.3g" x

let fmt_bytes n =
  let f = float_of_int n in
  if n < 1024 then Printf.sprintf "%dB" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1fkB" (f /. 1024.0)
  else if n < 1024 * 1024 * 1024 then Printf.sprintf "%.1fMB" (f /. (1024.0 *. 1024.0))
  else Printf.sprintf "%.2fGB" (f /. (1024.0 *. 1024.0 *. 1024.0))
