(** Single-word-CAS lock-free deque for the DFDeques discipline.

    A Chase–Lev-style work-stealing deque (owner pushes and pops at the
    bottom, thieves CAS the top forward) extended with the two
    operations the paper's DFDeques discipline needs from its deques and
    which previously forced a per-deque mutex in the pool:

    - {!abandon}: the sticky ownership give-up an owner publishes when
      its memory quota runs out mid-deque.  One-way [Some w -> None];
      a deque is never re-owned, so abandonment freezes the bottom end.
    - {!is_dead}: the lock-free death certificate
      [owner = None && is_empty].  Because abandonment is sticky and
      pushes are owner-only, emptiness observed after [owner = None] is
      stable, so a reaper may unlink a dead deque from R without
      re-checking under a lock.

    All operations are non-blocking: the owner path is wait-free except
    for the last-element CAS race, thieves retry at most once per call
    (callers loop with backoff).  Safety under OCaml's SC [Atomic]s is
    argued in DESIGN.md §16, and every CAS window carries a
    {!Schedpoint} yield point so the lib/check explorer can drive
    owner/thief/reaper interleavings deterministically.

    The optional [ops] argument on mutating operations accumulates the
    number of atomic RMW / publishing-store operations actually executed
    (CAS attempts included, plain loads excluded) — the per-worker
    sync-op metric surfaced as [Pool.sync_ops]. *)

type 'a t

val create : ?min_capacity:int -> ?owner:int -> unit -> 'a t
(** [create ()] — empty deque.  [min_capacity] is rounded up to a power
    of two (default 16).  [owner] sets the initial owner id. *)

val create_at : ?min_capacity:int -> ?owner:int -> index:int -> unit -> 'a t
(** [create_at ~index ()] — empty deque whose logical top/bottom indices
    start at [index] instead of 0, for exercising index wraparound near
    [max_int] without pushing 2{^62} elements first. *)

val push : ?ops:int ref -> 'a t -> 'a -> unit
(** Owner only: push at the bottom.  Grows the buffer (owner-only,
    republished atomically) when full; never blocks, never fails. *)

val pop : ?ops:int ref -> 'a t -> 'a option
(** Owner only: pop the most recently pushed element (LIFO end).  [None]
    when empty or when a thief wins the race for the last element. *)

val steal : ?ops:int ref -> 'a t -> 'a option
(** Thief: take the oldest element (FIFO end).  [None] when the deque is
    empty or the top CAS loses to a racing thief or last-element pop —
    callers are expected to retry with backoff. *)

val owner : 'a t -> int option
(** Current owner id; [None] once abandoned (never reverts). *)

val abandon : ?ops:int ref -> 'a t -> unit
(** Owner only: sticky [owner := None].  Called when the owner's memory
    quota is exhausted and it leaves the deque in R for thieves to
    drain.  Must be the owner's last operation on the deque. *)

val is_dead : 'a t -> bool
(** Lock-free death certificate: unowned and empty.  Stable — once true
    it remains true, so a reaper can act on it without revalidation. *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Racy snapshot; exact when quiescent. *)

val capacity : 'a t -> int
(** Current buffer capacity (for tests). *)
