(* Live Theorem-4.4 gauges.  The budget formula must stay in lockstep
   with Dfd_check.Oracle.thm44 (test_obs checks them against each other
   on the differential scenarios). *)

type t = {
  c : int;
  s1 : int;
  depth : int;
  mutable p : int;
  mutable k : int;
  mutable last_alloc : int;
  live_g : Registry.Gauge.t;
  budget_g : Registry.Gauge.t;
  premature_g : Registry.Gauge.t;
  premature_depth_h : Registry.Histogram.t;
  alloc_rate_g : Registry.Gauge.t;
}

let compute_budget ~c ~s1 ~depth ~p ~k = s1 + (c * min k s1 * p * depth)

let create ~registry ~policy ?(c = 8) ?(s1 = 0) ?(depth = 0) ~p ~k () =
  let labeled base = Printf.sprintf "%s{policy=%S}" base policy in
  let live_g =
    Registry.gauge registry ~help:"Current live heap bytes under the scheduler."
      (labeled "dfd_space_live_bytes")
  in
  let budget_g =
    Registry.gauge registry
      ~help:"Theorem 4.4 space budget S1 + c*min(K,S1)*p*D for the current quota K."
      (labeled "dfd_space_budget_bytes")
  in
  let premature_g =
    Registry.gauge registry ~help:"Heavy premature nodes observed (Lemma 4.2 charges O(p*D))."
      (labeled "dfd_space_premature_nodes")
  in
  let premature_depth_h =
    Registry.histogram registry ~help:"Fork depth at which heavy premature nodes were stolen."
      (labeled "dfd_space_premature_depth")
  in
  let alloc_rate_g =
    Registry.gauge registry ~help:"Allocation pressure (bytes) per quota-control interval."
      (labeled "dfd_space_alloc_rate_bytes")
  in
  let t =
    { c; s1; depth; p; k; last_alloc = 0; live_g; budget_g; premature_g; premature_depth_h; alloc_rate_g }
  in
  Registry.Gauge.set budget_g (compute_budget ~c ~s1 ~depth ~p ~k);
  Registry.probe_float registry ~help:"(budget - peak_live) / budget; negative means the bound is blown."
    (labeled "dfd_space_headroom_ratio") (fun () ->
      let b = Registry.Gauge.value budget_g in
      if b = 0 then if Registry.Gauge.peak live_g = 0 then 1.0 else 0.0
      else float_of_int (b - Registry.Gauge.peak live_g) /. float_of_int b);
  Registry.probe registry ~kind:`Gauge ~help:"High watermark of dfd_space_live_bytes."
    (labeled "dfd_space_peak_bytes") (fun () -> Registry.Gauge.peak live_g);
  t

let budget t = compute_budget ~c:t.c ~s1:t.s1 ~depth:t.depth ~p:t.p ~k:t.k

let set_quota t k =
  t.k <- k;
  Registry.Gauge.set t.budget_g (budget t)

(* Degraded-mode rescale: a quarantined worker shrinks the live processor
   count, and the Theorem 4.4 budget S1 + c*min(K,S1)*p*D shrinks with
   it — the bound degrades gracefully in p, and the gauge must agree with
   the pool's [degraded_p] after a crash domain fires. *)
let set_p t p =
  t.p <- max 1 p;
  Registry.Gauge.set t.budget_g (budget t)

let observe t ~live_bytes = Registry.Gauge.set t.live_g live_bytes

let live t = Registry.Gauge.value t.live_g

let peak t = Registry.Gauge.peak t.live_g

let headroom_ratio t =
  let b = budget t in
  if b = 0 then if peak t = 0 then 1.0 else 0.0
  else float_of_int (b - peak t) /. float_of_int b

let note_premature t ~depth =
  Registry.Gauge.add t.premature_g 1;
  Registry.Histogram.observe t.premature_depth_h depth

let set_premature t n = Registry.Gauge.set t.premature_g n

let premature t = Registry.Gauge.value t.premature_g

let reset_pressure t = t.last_alloc <- 0

let take_pressure t ~cumulative_alloc =
  let pressure = max 0 (cumulative_alloc - t.last_alloc) in
  t.last_alloc <- cumulative_alloc;
  Registry.Gauge.set t.alloc_rate_g pressure;
  pressure
