(** Always-on metrics registry: typed counters, gauges and log2-bucketed
    histograms, designed so the scheduler hot path pays (almost) nothing.

    Write-side instruments are backed by per-domain [Atomic] cells sharded
    by [Domain.self () land mask] — the same idiom as the native pool's
    per-worker counter records — so concurrent increments from different
    domains touch different cache lines and are aggregated only at read
    (snapshot) time.  An instrument obtained from {!disabled} carries an
    immutable [false] flag; every update is then a single load-and-branch
    with no allocation, matching the zero-cost-when-off discipline of
    {!Dfd_trace.Tracer} and {!Dfd_fault.Fault}.

    Besides owned instruments, the registry accepts {e probes}: named
    closures evaluated at snapshot time.  Probes let existing state (the
    pool's per-worker counter records, the service's supervision counters,
    a simulation's {!Dfd_machine.Metrics}) appear in snapshots without any
    double bookkeeping on the hot path.  Registration is an upsert: writing
    the same name again returns the existing instrument (or replaces the
    probe closure), so components that respawn — pool incarnations under
    the supervisor — keep accumulating into one time series.  Re-using a
    name with a different instrument kind raises [Invalid_argument].

    Metric names follow the OpenMetrics grammar
    [[a-zA-Z_:][a-zA-Z0-9_:]*], optionally followed by a literal label set
    [{key="value",...}] which {!Openmetrics} re-attaches to each rendered
    sample line.  Samples marked [~stable:true] depend only on
    seed-deterministic state (the service's logical clock world); the soak
    report embeds [snapshot ~stable_only:true] so same-seed runs stay
    byte-identical even while native-pool counters race. *)

type t

val create : ?shards:int -> unit -> t
(** An enabled registry.  [shards] (default 8, rounded up to a power of
    two) bounds the per-instrument cell array; more shards mean less
    false sharing at higher memory cost. *)

val disabled : t
(** The shared off registry: every instrument it hands out is a no-op and
    {!snapshot} is empty. *)

val enabled : t -> bool

(** Monotone event counts (sharded; increment from any domain). *)
module Counter : sig
  type t

  val incr : t -> unit

  val add : t -> int -> unit
  (** Negative deltas are rejected with [Invalid_argument]. *)

  val value : t -> int
  (** Sum over shards. *)
end

(** A current-value cell that remembers its high watermark. *)
module Gauge : sig
  type t

  val set : t -> int -> unit

  val add : t -> int -> unit

  val value : t -> int

  val peak : t -> int
  (** Highest value ever {!set} (or reached via {!add}). *)
end

(** Log2-bucketed histogram of non-negative integer observations, same
    bucketing as {!Dfd_structures.Stats.Histogram}: bucket 0 holds [0,1),
    bucket [i >= 1] holds [[2^(i-1), 2^i)]. *)
module Histogram : sig
  type t

  val observe : t -> int -> unit
  (** Negative observations clamp to 0. *)

  val count : t -> int

  val sum : t -> int
end

(** Snapshot value of a histogram-shaped sample: total count, total sum
    and per-bucket counts as [(upper_bound, count)] with increasing
    bounds, non-cumulative (the OpenMetrics renderer accumulates). *)
type hist = { h_count : int; h_sum : float; h_buckets : (float * int) list }

type value =
  | Counter_v of int
  | Gauge_v of int  (** current value; the peak is a separate sample. *)
  | Float_v of float
  | Hist_v of hist

type sample = { name : string; help : string; stable : bool; value : value }

val counter : t -> ?help:string -> ?stable:bool -> string -> Counter.t
val gauge : t -> ?help:string -> ?stable:bool -> string -> Gauge.t
val histogram : t -> ?help:string -> ?stable:bool -> string -> Histogram.t

val probe :
  t ->
  ?help:string ->
  ?stable:bool ->
  kind:[ `Counter | `Gauge ] ->
  string ->
  (unit -> int) ->
  unit
(** Register (or replace) a read-at-snapshot closure rendered as a counter
    or gauge sample. *)

val probe_float : t -> ?help:string -> ?stable:bool -> string -> (unit -> float) -> unit

val probe_histogram : t -> ?help:string -> ?stable:bool -> string -> (unit -> hist) -> unit

val hist_of_stats : Dfd_structures.Stats.Histogram.t -> hist
(** Bridge a simulator histogram into the snapshot shape (bucket bounds
    coincide by construction). *)

val labeled : string -> (string * string) list -> string
(** [labeled "fam" [("tenant", "gold")]] -> ["fam{tenant=\"gold\"}"]:
    build a labelled metric name, escaping backslash, quote and newline
    in label values.  The result is validated with {!split_labeled}, so
    a name this returns always registers and renders cleanly.  An empty
    label list returns the bare family name. *)

val split_labeled : string -> string * string option
(** ["fam{k=\"v\"}"] -> [("fam", Some "k=\"v\"")]; plain names map to
    [(name, None)].  Raises [Invalid_argument] on names the renderer could
    not handle — also used as the registration-time validator. *)

val snapshot : ?stable_only:bool -> t -> sample list
(** All current samples sorted by name.  Owned instruments are read with
    plain atomic loads; probe closures run under the registry lock, so
    they must not themselves touch the registry.  A probe that raises
    contributes no sample (crash forensics must not crash). *)

(** Renderers over sample lists — shared by the service snapshot, the
    soak report and [Pool.stats], which previously each hand-rolled their
    own flattening. *)
module Snapshot : sig
  val to_json : sample list -> Dfd_trace.Json.t
  (** Lossless: [{"metrics":[{"name","type","value"...}]}]; histograms
      carry count/sum/buckets. *)

  val to_flat_json : sample list -> Dfd_trace.Json.t
  (** A flat object [{name: number, ...}] of the scalar samples
      (histograms are skipped) — the legacy counters-object shape. *)

  val to_alist : sample list -> (string * int) list
  (** Integer-valued samples only, in snapshot (name) order. *)
end
