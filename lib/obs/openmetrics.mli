(** OpenMetrics v1 text exposition over {!Registry} snapshots.

    One metric family per distinct base name (label sets share the
    family's [# TYPE] / [# HELP] header); histogram samples expand to the
    cumulative [_bucket{le="..."}] series plus [_count] / [_sum]; output
    ends with the mandatory [# EOF] terminator.  Rendering is a pure
    function of the snapshot, so two snapshots of identical state produce
    byte-identical text — the property the CI metrics job [cmp]s.

    The renderer keeps registered names verbatim (a counter registered as
    [foo_total] renders sample lines [foo_total], not [foo_total_total]);
    [test/validate_metrics.ml] and the round-trip parser in [test/om_util]
    define the accepted grammar. *)

val render : Registry.sample list -> string

val write_channel : out_channel -> Registry.sample list -> unit
