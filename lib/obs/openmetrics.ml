(* OpenMetrics v1 text renderer.  Deterministic: integer samples print as
   decimal ints, float samples through one fixed %.12g format. *)

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f else Printf.sprintf "%.12g" f

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let type_name (v : Registry.value) =
  match v with
  | Registry.Counter_v _ -> "counter"
  | Registry.Gauge_v _ | Registry.Float_v _ -> "gauge"
  | Registry.Hist_v _ -> "histogram"

(* [suffixed "fam" (Some "k=\"v\"") "_bucket" (Some "le=\"1\"")] =
   [fam_bucket{k="v",le="1"}] — label plumbing shared by every series. *)
let suffixed base labels suffix extra =
  let labels =
    match (labels, extra) with
    | None, None -> ""
    | Some l, None -> "{" ^ l ^ "}"
    | None, Some e -> "{" ^ e ^ "}"
    | Some l, Some e -> "{" ^ l ^ "," ^ e ^ "}"
  in
  base ^ suffix ^ labels

let render_sample b (s : Registry.sample) =
  let base, labels = Registry.split_labeled s.Registry.name in
  match s.Registry.value with
  | Registry.Counter_v n | Registry.Gauge_v n ->
    Buffer.add_string b (Printf.sprintf "%s %d\n" (suffixed base labels "" None) n)
  | Registry.Float_v f -> Buffer.add_string b (Printf.sprintf "%s %s\n" (suffixed base labels "" None) (fmt_float f))
  | Registry.Hist_v h ->
    let cum = ref 0 in
    List.iter
      (fun (ub, c) ->
        cum := !cum + c;
        Buffer.add_string b
          (Printf.sprintf "%s %d\n"
             (suffixed base labels "_bucket" (Some (Printf.sprintf "le=%S" (fmt_float ub))))
             !cum))
      h.Registry.h_buckets;
    Buffer.add_string b
      (Printf.sprintf "%s %d\n" (suffixed base labels "_bucket" (Some "le=\"+Inf\"")) h.Registry.h_count);
    Buffer.add_string b (Printf.sprintf "%s %d\n" (suffixed base labels "_count" None) h.Registry.h_count);
    Buffer.add_string b (Printf.sprintf "%s %s\n" (suffixed base labels "_sum" None) (fmt_float h.Registry.h_sum))

let render samples =
  let b = Buffer.create 4096 in
  let last_family = ref "" in
  List.iter
    (fun (s : Registry.sample) ->
      let base, _ = Registry.split_labeled s.Registry.name in
      if base <> !last_family then begin
        last_family := base;
        if s.Registry.help <> "" then
          Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" base (escape_help s.Registry.help));
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" base (type_name s.Registry.value))
      end;
      render_sample b s)
    samples;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let write_channel oc samples = output_string oc (render samples)
