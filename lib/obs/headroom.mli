(** Live Theorem-4.4 space-headroom profiler.

    The paper's headline space claim — DFDeques(K) keeps live space within
    [S1 + O(min(K, S1) * p * D)] — is checked offline by the test oracles;
    this module turns it into gauges an operator (and the adaptive-K
    controller) can watch while a run is in flight:

    - [dfd_space_live_bytes{policy=...}] — current live heap bytes;
    - [dfd_space_peak_bytes{...}] — its high watermark;
    - [dfd_space_budget_bytes{...}] — [S1 + c * min(K, S1) * p * D], the
      bound instantiated exactly as [Dfd_check.Oracle.thm44] computes it
      (same constant [c], default 8), recomputed whenever the adaptive
      controller moves K;
    - [dfd_space_headroom_ratio{...}] — [(budget - peak) / budget];
    - [dfd_space_premature_nodes{...}] and a log2 histogram
      [dfd_space_premature_depth{...}] of the fork depths at which heavy
      premature nodes (Lemma 4.2) were stolen — the term the bound's
      [p * D] factor is made of;
    - [dfd_space_alloc_rate_bytes{...}] — allocation pressure per control
      interval, maintained by {!take_pressure}; the service's
      [Quota_ctl] reads this gauge instead of re-deriving deltas from raw
      pool counters, so degradation and observability share one source of
      truth.

    [s1] and [depth] come from [Analysis.analyze] when the program is
    known (the simulator path, where the acceptance check against
    [Oracle.thm44] is exact) and from configuration estimates on the
    service path, where the true dag is unknown until executed. *)

type t

val create :
  registry:Registry.t ->
  policy:string ->
  ?c:int ->
  ?s1:int ->
  ?depth:int ->
  p:int ->
  k:int ->
  unit ->
  t
(** Registers the gauge family labeled [policy="..."] into [registry]
    (upsert: a respawned owner re-binds the same series).  [c] defaults
    to 8, matching [Oracle.thm44]; [s1] and [depth] default to 0, which
    degrades the budget to the [S1] term alone. *)

val budget : t -> int
(** [s1 + c * min k s1 * p * depth] for the current [k]. *)

val set_quota : t -> int -> unit
(** The adaptive controller moved K: recompute and republish the
    budget. *)

val set_p : t -> int -> unit
(** The live processor count changed (a worker was quarantined, or
    respawned): recompute and republish the budget with the degraded
    [p] — the Theorem 4.4 bound shrinks gracefully to
    [S1 + c*min(K,S1)*(p-1)*D] after a crash domain fires.  Clamped to
    at least 1. *)

val observe : t -> live_bytes:int -> unit
(** Update the live gauge (and through it the peak watermark). *)

val live : t -> int

val peak : t -> int

val headroom_ratio : t -> float
(** [(budget - peak) / budget]; 1.0 while nothing has been observed, 0.0
    when the budget is degenerate (0) and anything was observed. *)

val note_premature : t -> depth:int -> unit
(** One heavy premature node stolen at fork depth [depth]. *)

val set_premature : t -> int -> unit
(** Absolute premature count (for owners that already aggregate, like the
    engine's {!Dfd_machine.Metrics}). *)

val premature : t -> int

val take_pressure : t -> cumulative_alloc:int -> int
(** Pressure = non-negative delta of [cumulative_alloc] since the last
    call (first call measures from 0); publishes it on the alloc-rate
    gauge and returns it.  This is the exact quantity the service's
    quota tick historically computed inline from [Pool.counters]. *)

val reset_pressure : t -> unit
(** Reset the {!take_pressure} baseline to 0 — called when the counter
    source restarts (a fresh pool incarnation after a wedge). *)
