module Event = Dfd_trace.Event
module Json = Dfd_trace.Json

let sentinel : Event.t = { ts = -1; proc = -1; tid = -1; kind = Event.Dummy_exec }

type lane = {
  ring : Event.t array;
  (* arrival index per slot, for stable merge order among equal timestamps *)
  arrivals : int array;
  mutable written : int;  (** total events this lane ever recorded *)
}

type t = { on : bool; capacity : int; lanes : lane array }

let disabled = { on = false; capacity = 0; lanes = [||] }

let create ?(capacity = 256) ~lanes () =
  if lanes <= 0 then invalid_arg "Flight.create: lanes must be positive";
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  {
    on = true;
    capacity;
    lanes = Array.init lanes (fun _ -> { ring = Array.make capacity sentinel; arrivals = Array.make capacity 0; written = 0 });
  }

let enabled t = t.on

let record t ~lane (e : Event.t) =
  if t.on then begin
    let n = Array.length t.lanes in
    let l = t.lanes.(if lane >= 0 && lane < n then lane else ((lane mod n) + n) mod n) in
    let slot = l.written mod t.capacity in
    l.ring.(slot) <- e;
    l.arrivals.(slot) <- l.written;
    l.written <- l.written + 1
  end

let recordk t ~lane ~ts ~proc ~tid kind = if t.on then record t ~lane { Event.ts; proc; tid; kind }

let recorded t = Array.fold_left (fun acc l -> acc + l.written) 0 t.lanes

let dropped t = Array.fold_left (fun acc l -> acc + max 0 (l.written - t.capacity)) 0 t.lanes

let events t =
  let all = ref [] in
  Array.iteri
    (fun li l ->
      let live = min l.written t.capacity in
      for i = 0 to live - 1 do
        let e = l.ring.(i) in
        (* a torn slot (overwritten mid-read) can at worst surface the
           sentinel; drop it rather than report a fake event *)
        if e.Event.ts >= 0 then all := (e.Event.ts, li, l.arrivals.(i), e) :: !all
      done)
    t.lanes;
  !all
  |> List.sort (fun (ts1, l1, a1, _) (ts2, l2, a2, _) -> compare (ts1, l1, a1) (ts2, l2, a2))
  |> List.map (fun (_, _, _, e) -> e)

let to_json ?snapshot ~reason t =
  Json.Assoc
    [
      ( "flight",
        Json.Assoc
          ([
             ("reason", Json.String reason);
             ("lanes", Json.Int (Array.length t.lanes));
             ("capacity", Json.Int t.capacity);
             ("recorded", Json.Int (recorded t));
             ("dropped", Json.Int (dropped t));
             ("events", Json.List (List.map Event.to_json (events t)));
           ]
           @ match snapshot with None -> [] | Some s -> [ ("snapshot", Json.String s) ]) );
    ]

let write_file ?snapshot ~path ~reason t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc (to_json ?snapshot ~reason t);
      output_char oc '\n')
