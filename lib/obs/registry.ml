(* Sharded-atomic metrics registry.  Hot-path writes touch one Atomic
   cell selected by the calling domain's id; reads (snapshots) aggregate.
   Instruments from the [disabled] registry share a [false] flag checked
   first on every operation, so an off registry costs one immutable load
   and a branch — measured by the obs-overhead pair in bench/. *)

module Json = Dfd_trace.Json

let n_buckets = 63 (* log2 buckets: index 0 = [0,1), i = [2^(i-1), 2^i) *)

let bucket_index v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and x = ref v in
    while !x > 0 do
      incr i;
      x := !x lsr 1
    done;
    min !i (n_buckets - 1)
  end

let shard_index mask = (Domain.self () :> int) land mask

module Counter = struct
  type t = { on : bool; mask : int; cells : int Atomic.t array }

  let make shards = { on = true; mask = shards - 1; cells = Array.init shards (fun _ -> Atomic.make 0) }

  let noop = { on = false; mask = 0; cells = [||] }

  let add t n =
    if t.on then begin
      if n < 0 then invalid_arg "Registry.Counter.add: negative delta";
      ignore (Atomic.fetch_and_add t.cells.(shard_index t.mask) n)
    end

  let incr t = if t.on then ignore (Atomic.fetch_and_add t.cells.(shard_index t.mask) 1)

  let value t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.cells
end

module Gauge = struct
  type t = { on : bool; cell : int Atomic.t; hi : int Atomic.t }

  let make () = { on = true; cell = Atomic.make 0; hi = Atomic.make 0 }

  let noop = { on = false; cell = Atomic.make 0; hi = Atomic.make 0 }

  let rec raise_peak t v =
    let p = Atomic.get t.hi in
    if v > p && not (Atomic.compare_and_set t.hi p v) then raise_peak t v

  let set t v =
    if t.on then begin
      Atomic.set t.cell v;
      raise_peak t v
    end

  let add t d =
    if t.on then begin
      let v = Atomic.fetch_and_add t.cell d + d in
      raise_peak t v
    end

  let value t = Atomic.get t.cell

  let peak t = Atomic.get t.hi
end

module Histogram = struct
  type t = {
    on : bool;
    mask : int;
    (* flat [shard * n_buckets] bucket cells plus one sum cell per shard *)
    cells : int Atomic.t array;
    sums : int Atomic.t array;
  }

  let make shards =
    {
      on = true;
      mask = shards - 1;
      cells = Array.init (shards * n_buckets) (fun _ -> Atomic.make 0);
      sums = Array.init shards (fun _ -> Atomic.make 0);
    }

  let noop = { on = false; mask = 0; cells = [||]; sums = [||] }

  let observe t v =
    if t.on then begin
      let v = max 0 v in
      let s = shard_index t.mask in
      ignore (Atomic.fetch_and_add t.cells.((s * n_buckets) + bucket_index v) 1);
      ignore (Atomic.fetch_and_add t.sums.(s) v)
    end

  let bucket_total t i =
    let shards = t.mask + 1 in
    let acc = ref 0 in
    for s = 0 to shards - 1 do
      acc := !acc + Atomic.get t.cells.((s * n_buckets) + i)
    done;
    !acc

  let count t =
    if not t.on then 0
    else begin
      let acc = ref 0 in
      for i = 0 to n_buckets - 1 do
        acc := !acc + bucket_total t i
      done;
      !acc
    end

  let sum t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.sums
end

type hist = { h_count : int; h_sum : float; h_buckets : (float * int) list }

type value = Counter_v of int | Gauge_v of int | Float_v of float | Hist_v of hist

type sample = { name : string; help : string; stable : bool; value : value }

type probe_fn = P_int of [ `Counter | `Gauge ] * (unit -> int) | P_float of (unit -> float) | P_hist of (unit -> hist)

type entry = {
  e_help : string;
  e_stable : bool;
  e_kind : [ `Counter | `Gauge | `Histogram | `Probe ];
  e_body : body;
}

and body =
  | B_counter of Counter.t
  | B_gauge of Gauge.t
  | B_hist of Histogram.t
  | B_probe of probe_fn ref

type t = {
  on : bool;
  shards : int;
  lock : Mutex.t;
  entries : (string, entry) Hashtbl.t;
}

let disabled = { on = false; shards = 1; lock = Mutex.create (); entries = Hashtbl.create 1 }

let rec pow2_ceil n k = if k >= n then k else pow2_ceil n (k * 2)

let create ?(shards = 8) () =
  let shards = pow2_ceil (max 1 shards) 1 in
  { on = true; shards; lock = Mutex.create (); entries = Hashtbl.create 64 }

let enabled t = t.on

(* --- name validation / label splitting --------------------------------- *)

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_base s =
  String.length s > 0
  && is_name_start s.[0]
  && (let ok = ref true in
      String.iter (fun c -> if not (is_name_char c) then ok := false) s;
      !ok)

(* "name{key=\"v\",...}" -> (base, Some "key=\"v\",...");  plain names pass
   through.  Raises [Invalid_argument] on anything the OpenMetrics
   renderer could not re-attach a [le] label to. *)
let split_labeled name =
  match String.index_opt name '{' with
  | None ->
    if not (valid_base name) then invalid_arg (Printf.sprintf "Registry: bad metric name %S" name);
    (name, None)
  | Some i ->
    let base = String.sub name 0 i in
    let n = String.length name in
    if (not (valid_base base)) || n < i + 3 || name.[n - 1] <> '}' then
      invalid_arg (Printf.sprintf "Registry: bad metric name %S" name);
    let labels = String.sub name (i + 1) (n - i - 2) in
    String.iter
      (fun c -> if c = '\n' || c = '{' || c = '}' then invalid_arg (Printf.sprintf "Registry: bad label set in %S" name))
      labels;
    (base, Some labels)

let labeled base labels =
  let escape v =
    let buf = Buffer.create (String.length v) in
    String.iter
      (fun c ->
         match c with
         | '\\' -> Buffer.add_string buf "\\\\"
         | '"' -> Buffer.add_string buf "\\\""
         | '\n' -> Buffer.add_string buf "\\n"
         | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf
  in
  let name =
    match labels with
    | [] -> base
    | _ ->
      Printf.sprintf "%s{%s}" base
        (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) labels))
  in
  ignore (split_labeled name);
  name

let register t name ~help ~stable ~kind make =
  ignore (split_labeled name);
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some e when e.e_kind = kind -> e.e_body
      | Some e ->
        invalid_arg
          (Printf.sprintf "Registry: %S already registered with a different kind (%s)" name
             (match e.e_kind with
              | `Counter -> "counter"
              | `Gauge -> "gauge"
              | `Histogram -> "histogram"
              | `Probe -> "probe"))
      | None ->
        let body = make () in
        Hashtbl.replace t.entries name { e_help = help; e_stable = stable; e_kind = kind; e_body = body };
        body)

let counter t ?(help = "") ?(stable = false) name =
  if not t.on then Counter.noop
  else
    match register t name ~help ~stable ~kind:`Counter (fun () -> B_counter (Counter.make t.shards)) with
    | B_counter c -> c
    | _ -> assert false

let gauge t ?(help = "") ?(stable = false) name =
  if not t.on then Gauge.noop
  else
    match register t name ~help ~stable ~kind:`Gauge (fun () -> B_gauge (Gauge.make ())) with
    | B_gauge g -> g
    | _ -> assert false

let histogram t ?(help = "") ?(stable = false) name =
  if not t.on then Histogram.noop
  else
    match register t name ~help ~stable ~kind:`Histogram (fun () -> B_hist (Histogram.make t.shards)) with
    | B_hist h -> h
    | _ -> assert false

(* Probes upsert by replacing the closure: a respawned component re-probing
   the same name just redirects the sample at its fresh state. *)
let put_probe t name ~help ~stable fn =
  if t.on then begin
    match register t name ~help ~stable ~kind:`Probe (fun () -> B_probe (ref fn)) with
    | B_probe r -> r := fn
    | _ -> assert false
  end

let probe t ?(help = "") ?(stable = false) ~kind name f = put_probe t name ~help ~stable (P_int (kind, f))

let probe_float t ?(help = "") ?(stable = false) name f = put_probe t name ~help ~stable (P_float f)

let probe_histogram t ?(help = "") ?(stable = false) name f = put_probe t name ~help ~stable (P_hist f)

let hist_of_stats h =
  let module SH = Dfd_structures.Stats.Histogram in
  { h_count = SH.count h; h_sum = SH.total h; h_buckets = SH.buckets h }

let hist_of_instrument (h : Histogram.t) =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    let c = Histogram.bucket_total h i in
    if c > 0 then begin
      let ub = if i = 0 then 1.0 else Float.of_int (1 lsl i) in
      buckets := (ub, c) :: !buckets
    end
  done;
  let count = List.fold_left (fun acc (_, c) -> acc + c) 0 !buckets in
  { h_count = count; h_sum = float_of_int (Histogram.sum h); h_buckets = !buckets }

let sample_of name (e : entry) =
  let value =
    match e.e_body with
    | B_counter c -> Some (Counter_v (Counter.value c))
    | B_gauge g -> Some (Gauge_v (Gauge.value g))
    | B_hist h -> Some (Hist_v (hist_of_instrument h))
    | B_probe { contents = P_int (`Counter, f) } -> ( try Some (Counter_v (f ())) with _ -> None)
    | B_probe { contents = P_int (`Gauge, f) } -> ( try Some (Gauge_v (f ())) with _ -> None)
    | B_probe { contents = P_float f } -> ( try Some (Float_v (f ())) with _ -> None)
    | B_probe { contents = P_hist f } -> ( try Some (Hist_v (f ())) with _ -> None)
  in
  Option.map (fun value -> { name; help = e.e_help; stable = e.e_stable; value }) value

let snapshot ?(stable_only = false) t =
  if not t.on then []
  else
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold
          (fun name e acc -> if stable_only && not e.e_stable then acc else match sample_of name e with Some s -> s :: acc | None -> acc)
          t.entries []
        |> List.sort (fun a b -> compare a.name b.name))

module Snapshot = struct
  let hist_json h =
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Float h.h_sum);
      ("buckets", Json.List (List.map (fun (ub, c) -> Json.List [ Json.Float ub; Json.Int c ]) h.h_buckets));
    ]

  let to_json samples =
    let one s =
      let typed =
        match s.value with
        | Counter_v n -> [ ("type", Json.String "counter"); ("value", Json.Int n) ]
        | Gauge_v n -> [ ("type", Json.String "gauge"); ("value", Json.Int n) ]
        | Float_v f -> [ ("type", Json.String "gauge"); ("value", Json.Float f) ]
        | Hist_v h -> ("type", Json.String "histogram") :: hist_json h
      in
      Json.Assoc (("name", Json.String s.name) :: typed)
    in
    Json.Assoc [ ("metrics", Json.List (List.map one samples)) ]

  let to_flat_json samples =
    Json.Assoc
      (List.filter_map
         (fun s ->
           match s.value with
           | Counter_v n | Gauge_v n -> Some (s.name, Json.Int n)
           | Float_v f -> Some (s.name, Json.Float f)
           | Hist_v _ -> None)
         samples)

  let to_alist samples =
    List.filter_map (fun s -> match s.value with Counter_v n | Gauge_v n -> Some (s.name, n) | Float_v _ | Hist_v _ -> None) samples
end
