(** Always-on flight recorder: per-lane bounded rings of recent typed
    events ({!Dfd_trace.Event.t}), dumped as a JSON artifact when
    something dies — [Engine.Deadlock], [Pool.Timeout], a watchdog kill,
    [Service.Supervisor_giveup] — so the last moments of a wedged run are
    recoverable without having enabled full tracing.

    Each lane is single-writer (one per worker domain or simulated
    processor); recording overwrites the oldest entry once the ring is
    full, tracking how many were dropped.  Readers merge lanes sorted by
    [(ts, lane, arrival)], which is exact under the simulator's logical
    clock and best-effort under wall-clock timestamps.  Dumping is
    lock-free and tolerant of concurrent writers: forensics may tear a
    lane's oldest entries but must never crash or block the crash path. *)

type t

val create : ?capacity:int -> lanes:int -> unit -> t
(** [capacity] (default 256) is per lane.  [lanes] must be positive. *)

val disabled : t
(** Shared no-op recorder: {!record} is one load-and-branch. *)

val enabled : t -> bool

val record : t -> lane:int -> Dfd_trace.Event.t -> unit
(** Out-of-range lanes clamp into the lane array (never raises). *)

val recordk : t -> lane:int -> ts:int -> proc:int -> tid:int -> Dfd_trace.Event.kind -> unit
(** Convenience wrapper building the event in place; when [t] is disabled
    nothing is allocated — call sites still guard with {!enabled} if
    computing the payload is itself costly. *)

val recorded : t -> int
(** Total events ever recorded (including ones since overwritten). *)

val dropped : t -> int
(** Events lost to ring overwrite. *)

val events : t -> Dfd_trace.Event.t list
(** Surviving events, merged across lanes in [(ts, lane, arrival)]
    order. *)

val to_json : ?snapshot:string -> reason:string -> t -> Dfd_trace.Json.t
(** [{"flight": {"reason","lanes","capacity","recorded","dropped",
    "events":[...]}}] with events in {!events} order and
    {!Dfd_trace.Event.to_json} encoding.  [snapshot] (a human-readable
    diagnostic dump, e.g. [Pool.snapshot]) is embedded as a top-level
    ["snapshot"] string so the post-mortem state travels with the
    artifact instead of living only in an exception message. *)

val write_file : ?snapshot:string -> path:string -> reason:string -> t -> unit
